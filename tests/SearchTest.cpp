//===- SearchTest.cpp - Search module tests ------------------------------------===//

#include "src/search/Search.h"

#include <gtest/gtest.h>

#include <cmath>

namespace locus {
namespace {

using namespace search;

Space mixedSpace() {
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64; // 2..64: 6 values
  S.Params.push_back(A);
  ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);
  ParamDef C;
  C.Id = "c";
  C.Label = "c";
  C.Kind = ParamKind::Enum;
  C.Options = {"x", "y", "z"};
  S.Params.push_back(C);
  ParamDef D;
  D.Id = "d";
  D.Label = "opt:line1";
  D.Kind = ParamKind::Bool;
  S.Params.push_back(D);
  return S;
}

/// Separable objective with a unique optimum: a=16, b=7, c=1, d=1.
double synthetic(const Point &P, bool &Valid) {
  Valid = true;
  double A = static_cast<double>(P.getInt("a"));
  double B = static_cast<double>(P.getInt("b"));
  double C = static_cast<double>(P.getInt("c"));
  double D = static_cast<double>(P.getInt("d"));
  return std::abs(std::log2(A) - 4.0) * 3 + std::abs(B - 7.0) +
         std::abs(C - 1.0) * 5 + (1.0 - D) * 2;
}

TEST(Space, CardinalitiesAndSizes) {
  Space S = mixedSpace();
  EXPECT_EQ(S.Params[0].cardinality(), 6u);
  EXPECT_EQ(S.Params[1].cardinality(), 16u);
  EXPECT_EQ(S.Params[2].cardinality(), 3u);
  EXPECT_EQ(S.Params[3].cardinality(), 2u);
  EXPECT_EQ(S.fullSize(), 6u * 16 * 3 * 2);
  // The Bool is an "opt:" selector and is excluded from the value count.
  EXPECT_EQ(S.valueSize(), 6u * 16 * 3);
}

TEST(Space, PermutationCardinality) {
  ParamDef P;
  P.Kind = ParamKind::Permutation;
  P.PermSize = 4;
  EXPECT_EQ(P.cardinality(), 24u);
}

TEST(Space, PointKeyIsCanonical) {
  Point P1, P2;
  P1.Values["a"] = int64_t(4);
  P1.Values["b"] = std::string("x");
  P2.Values["b"] = std::string("x");
  P2.Values["a"] = int64_t(4);
  EXPECT_EQ(P1.key(), P2.key());
  P2.Values["a"] = int64_t(8);
  EXPECT_NE(P1.key(), P2.key());
}

TEST(Exhaustive, FindsGlobalOptimum) {
  Space S = mixedSpace();
  LambdaObjective Obj(synthetic);
  SearchOptions Opts;
  Opts.MaxEvaluations = 1000; // larger than the space
  SearchResult R = makeExhaustiveSearcher()->search(S, Obj, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.BestMetric, 0.0);
  EXPECT_EQ(R.Best.getInt("a"), 16);
  EXPECT_EQ(R.Best.getInt("b"), 7);
  EXPECT_EQ(R.Best.getInt("c"), 1);
  EXPECT_EQ(R.Best.getInt("d"), 1);
  EXPECT_EQ(R.Evaluations, static_cast<int>(S.fullSize()));
}

struct NamedSearcherCase {
  const char *Name;
  double QualityBound; ///< best metric must be <= bound within the budget
};

class SearcherQuality : public ::testing::TestWithParam<NamedSearcherCase> {};

TEST_P(SearcherQuality, FindsGoodPointWithinBudget) {
  Space S = mixedSpace();
  LambdaObjective Obj(synthetic);
  SearchOptions Opts;
  Opts.MaxEvaluations = 120;
  Opts.Seed = 7;
  auto Searcher = makeSearcher(GetParam().Name);
  ASSERT_NE(Searcher, nullptr);
  SearchResult R = Searcher->search(S, Obj, Opts);
  ASSERT_TRUE(R.Found) << GetParam().Name;
  EXPECT_LE(R.BestMetric, GetParam().QualityBound) << GetParam().Name;
  EXPECT_LE(R.Evaluations, Opts.MaxEvaluations);
}

INSTANTIATE_TEST_SUITE_P(
    AllSearchers, SearcherQuality,
    // Random's bound is loose: ~2% of the 576 points score <= 3, so a
    // 120-sample uniform run misses that set for some seed streams (the
    // bias-free bounded sampler draws a different stream than the old
    // modulo reduction did).
    ::testing::Values(NamedSearcherCase{"random", 4.0},
                      NamedSearcherCase{"hillclimb", 1.0},
                      NamedSearcherCase{"de", 2.0},
                      NamedSearcherCase{"bandit", 1.0},
                      NamedSearcherCase{"tpe", 2.0}),
    [](const ::testing::TestParamInfo<NamedSearcherCase> &Info) {
      return Info.param.Name;
    });

TEST(Searchers, DeterministicUnderSeed) {
  Space S = mixedSpace();
  LambdaObjective Obj(synthetic);
  SearchOptions Opts;
  Opts.MaxEvaluations = 60;
  Opts.Seed = 99;
  SearchResult R1 = makeBanditSearcher()->search(S, Obj, Opts);
  SearchResult R2 = makeBanditSearcher()->search(S, Obj, Opts);
  EXPECT_EQ(R1.BestMetric, R2.BestMetric);
  EXPECT_EQ(R1.Best.key(), R2.Best.key());
  EXPECT_EQ(R1.Evaluations, R2.Evaluations);
}

TEST(Searchers, InvalidRegionsAreSkipped) {
  Space S = mixedSpace();
  // Half the space (d == 0) is invalid.
  LambdaObjective Obj([](const Point &P, bool &Valid) {
    if (P.getInt("d") == 0) {
      Valid = false;
      return 0.0;
    }
    return synthetic(P, Valid);
  });
  SearchOptions Opts;
  Opts.MaxEvaluations = 150;
  for (const char *Name : {"random", "bandit", "tpe", "hillclimb"}) {
    SearchResult R = makeSearcher(Name)->search(S, Obj, Opts);
    ASSERT_TRUE(R.Found) << Name;
    EXPECT_GT(R.InvalidPoints, 0) << Name;
    EXPECT_EQ(R.Best.getInt("d"), 1) << Name;
  }
}

TEST(Searchers, DeduplicationAvoidsReassessment) {
  // Tiny space: any budget beyond fullSize must come from duplicates that
  // are skipped, not re-evaluated (the paper's OpenTuner note).
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::IntRange;
  A.Min = 0;
  A.Max = 3;
  S.Params.push_back(A);
  int Calls = 0;
  LambdaObjective Obj([&](const Point &P, bool &Valid) {
    Valid = true;
    ++Calls;
    return static_cast<double>(P.getInt("a"));
  });
  SearchOptions Opts;
  Opts.MaxEvaluations = 100;
  SearchResult R = makeBanditSearcher()->search(S, Obj, Opts);
  EXPECT_EQ(Calls, R.Evaluations);
  EXPECT_LE(R.Evaluations, 4);
  EXPECT_GT(R.DuplicatesSkipped, 0);
  EXPECT_EQ(R.BestMetric, 0.0);
}

TEST(Searchers, PermutationSpace) {
  Space S;
  ParamDef P;
  P.Id = "perm";
  P.Label = "perm";
  P.Kind = ParamKind::Permutation;
  P.PermSize = 4;
  S.Params.push_back(P);
  // Optimum: identity permutation.
  LambdaObjective Obj([](const Point &Pt, bool &Valid) {
    Valid = true;
    const auto &Perm = Pt.getPerm("perm");
    double Cost = 0;
    for (size_t I = 0; I < Perm.size(); ++I)
      Cost += std::abs(static_cast<double>(Perm[I]) - static_cast<double>(I));
    return Cost;
  });
  SearchOptions Opts;
  Opts.MaxEvaluations = 24;
  SearchResult R = makeExhaustiveSearcher()->search(S, Obj, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.BestMetric, 0.0);
  SearchResult R2 = makeBanditSearcher()->search(S, Obj, Opts);
  ASSERT_TRUE(R2.Found);
  EXPECT_LE(R2.BestMetric, 4.0);
}

TEST(Searchers, EnumerateValuesShapes) {
  ParamDef P;
  P.Kind = ParamKind::Pow2;
  P.Min = 2;
  P.Max = 512;
  EXPECT_EQ(enumerateValues(P).size(), 9u); // the Fig. 7 per-tile count
  P.Kind = ParamKind::FloatRange;
  P.FMin = 0;
  P.FMax = 1;
  EXPECT_EQ(enumerateValues(P).size(), 16u);
  P.Kind = ParamKind::LogInt;
  P.Min = 1;
  P.Max = 100;
  auto Values = enumerateValues(P);
  ASSERT_GE(Values.size(), 5u);
  for (size_t I = 1; I < Values.size(); ++I)
    EXPECT_GT(std::get<int64_t>(Values[I]), std::get<int64_t>(Values[I - 1]));
}

//===----------------------------------------------------------------------===//
// Static pre-evaluation filter
//===----------------------------------------------------------------------===//

/// Objective mirroring what the legality oracle guarantees at the driver
/// level: points with b < 4 are invalid. The filter proves a SUBSET of them
/// (b < 2) statically; the rest still fail through the objective.
struct FilterHarness {
  int Invocations = 0;
  SearchResult run(const std::string &Searcher, bool WithFilter) {
    Invocations = 0;
    Space S = mixedSpace();
    LambdaObjective Obj([this](const Point &P) {
      ++Invocations;
      if (P.getInt("b") < 4)
        return EvalOutcome::fail(FailureKind::InvalidPoint, "b out of range");
      bool Valid = false;
      double M = synthetic(P, Valid);
      return EvalOutcome::success(M);
    });
    SearchOptions Opts;
    Opts.MaxEvaluations = 200;
    Opts.Seed = 11;
    if (WithFilter)
      Opts.StaticFilter = [](const Point &P) -> std::optional<EvalOutcome> {
        if (P.getInt("b") < 2)
          return EvalOutcome::fail(FailureKind::InvalidPoint, "b out of range");
        return std::nullopt;
      };
    return makeSearcher(Searcher)->search(S, Obj, Opts);
  }
};

TEST(Search, StaticFilterShortCircuitsTheObjective) {
  for (const char *Name : {"random", "bandit", "exhaustive"}) {
    FilterHarness H;
    SearchResult Off = H.run(Name, false);
    int InvocationsOff = H.Invocations;
    SearchResult On = H.run(Name, true);
    int InvocationsOn = H.Invocations;

    // The filter fired, the objective ran strictly fewer times, and the
    // budget accounting is unchanged.
    EXPECT_GT(On.PrunedStatic, 0) << Name;
    EXPECT_EQ(Off.PrunedStatic, 0) << Name;
    EXPECT_LT(InvocationsOn, InvocationsOff) << Name;
    EXPECT_EQ(InvocationsOn, On.Evaluations - On.PrunedStatic) << Name;
    EXPECT_EQ(On.Evaluations, Off.Evaluations) << Name;
    EXPECT_EQ(On.InvalidPoints, Off.InvalidPoints) << Name;

    // Same trajectory, same winner: a pruned point flows through the
    // searcher exactly like an evaluated failure.
    ASSERT_EQ(On.History.size(), Off.History.size()) << Name;
    for (size_t I = 0; I < On.History.size(); ++I) {
      EXPECT_EQ(On.History[I].P.key(), Off.History[I].P.key())
          << Name << " diverged at step " << I;
      EXPECT_EQ(On.History[I].Valid, Off.History[I].Valid) << Name;
    }
    ASSERT_TRUE(On.Found) << Name;
    ASSERT_TRUE(Off.Found) << Name;
    EXPECT_EQ(On.Best.key(), Off.Best.key()) << Name;
    EXPECT_DOUBLE_EQ(On.BestMetric, Off.BestMetric) << Name;
  }
}

} // namespace
} // namespace locus
