//===- WorkloadsTest.cpp - workload generator sanity tests --------------------===//

#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/eval/Evaluator.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

TEST(Workloads, AllStencilSourcesParseAndRun) {
  for (workloads::StencilKind K :
       {workloads::StencilKind::Jacobi1D, workloads::StencilKind::Jacobi2D,
        workloads::StencilKind::Heat1D, workloads::StencilKind::Heat2D,
        workloads::StencilKind::Seidel1D, workloads::StencilKind::Seidel2D}) {
    auto P = cir::parseProgram(workloads::stencilSource(K, 4, 8));
    ASSERT_TRUE(P.ok()) << workloads::stencilName(K) << ": " << P.message();
    EXPECT_EQ((*P)->findRegions("stencil").size(), 1u);
    eval::EvalOptions Opts;
    Opts.CountCost = false;
    eval::RunResult R = eval::evaluateProgram(**P, Opts);
    EXPECT_TRUE(R.Ok) << workloads::stencilName(K) << ": " << R.Error;
  }
}

TEST(Workloads, CorpusParsesAndRuns) {
  std::vector<workloads::CorpusEntry> Corpus = workloads::loopCorpus(0.02, 11);
  ASSERT_GE(Corpus.size(), 16u); // at least one per suite
  std::set<std::string> Suites;
  for (const workloads::CorpusEntry &E : Corpus) {
    Suites.insert(E.Suite);
    auto P = cir::parseProgram(E.Source);
    ASSERT_TRUE(P.ok()) << E.Name << ": " << P.message();
    EXPECT_EQ((*P)->findRegions("scop").size(), 1u) << E.Name;
    eval::EvalOptions Opts;
    Opts.CountCost = false;
    eval::RunResult R = eval::evaluateProgram(**P, Opts);
    EXPECT_TRUE(R.Ok) << E.Name << ": " << R.Error;
  }
  EXPECT_EQ(Suites.size(), 16u);
}

TEST(Workloads, CorpusIsDeterministic) {
  auto A = workloads::loopCorpus(0.05, 3);
  auto B = workloads::loopCorpus(0.05, 3);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Source, B[I].Source);
  // A different seed draws different sizes.
  auto C = workloads::loopCorpus(0.05, 4);
  bool AnyDiff = false;
  for (size_t I = 0; I < std::min(A.size(), C.size()); ++I)
    if (A[I].Source != C[I].Source)
      AnyDiff = true;
  EXPECT_TRUE(AnyDiff);
}

TEST(Workloads, CorpusSuiteCountsMatchPaperAtFullScale) {
  auto Corpus = workloads::loopCorpus(1.0, 3);
  EXPECT_EQ(Corpus.size(), 856u); // Table I total
}

TEST(Workloads, KripkeSnippetsCoverAllKernelsAndLayouts) {
  workloads::KripkeConfig C;
  for (const std::string &Kernel : workloads::kripkeKernels()) {
    auto P = cir::parseProgram(workloads::kripkeKernelSource(C, Kernel));
    ASSERT_TRUE(P.ok()) << Kernel << ": " << P.message();
    auto Snips = workloads::kripkeSnippets(C, Kernel);
    EXPECT_EQ(Snips.size(), 6u) << Kernel;
    for (const auto &[Name, Text] : Snips) {
      auto Stmts = cir::parseStatements(Text);
      EXPECT_TRUE(Stmts.ok()) << Name << ": " << Stmts.message();
      EXPECT_FALSE(Stmts->empty()) << Name;
    }
    for (const std::string &Layout : workloads::kripkeLayouts()) {
      auto Hand = cir::parseProgram(
          workloads::kripkeHandOptimizedSource(C, Kernel, Layout));
      ASSERT_TRUE(Hand.ok()) << Kernel << "/" << Layout << ": "
                             << Hand.message();
    }
  }
}

TEST(Workloads, PolybenchSourcesAreUnannotatedAndRun) {
  ASSERT_EQ(workloads::polybenchKernels().size(), 8u);
  for (const std::string &Name : workloads::polybenchKernels()) {
    std::string Source = workloads::polybenchSource(Name, 8);
    // These are the region-discovery inputs: no @Locus markers anywhere.
    EXPECT_EQ(Source.find("@Locus"), std::string::npos) << Name;
    auto P = cir::parseProgram(Source);
    ASSERT_TRUE(P.ok()) << Name << ": " << P.message();
    eval::EvalOptions Opts;
    Opts.CountCost = false;
    eval::RunResult R = eval::evaluateProgram(**P, Opts);
    EXPECT_TRUE(R.Ok) << Name << ": " << R.Error;
  }
}

TEST(Workloads, KripkeHandVersionsDifferByLayout) {
  workloads::KripkeConfig C;
  C.NumZones = 8;
  C.NumGroups = 3;
  C.NumMoments = 2;
  C.NumDirections = 4;
  // Each layout linearizes the 3D quantities differently, so the
  // position-based default initialization gives layout-specific inputs:
  // checksums differ across layouts (within one layout the Locus and hand
  // versions match — asserted by the driver tests), and so do the costs.
  std::set<long long> Cycles;
  for (const std::string &Layout : workloads::kripkeLayouts()) {
    auto P = cir::parseProgram(
        workloads::kripkeHandOptimizedSource(C, "LTimes", Layout));
    ASSERT_TRUE(P.ok());
    eval::ProgramEvaluator E(**P, eval::EvalOptions());
    ASSERT_TRUE(E.prepare().ok());
    workloads::initKripkeArrays(E, C);
    eval::RunResult R = E.run();
    ASSERT_TRUE(R.Ok) << Layout << ": " << R.Error;
    Cycles.insert(static_cast<long long>(R.Cycles));
  }
  EXPECT_GE(Cycles.size(), 3u) << "layouts should have distinct costs";
}

} // namespace
} // namespace locus
