//===- TransformTest.cpp - Transformation correctness tests -----------------===//
//
// Every transformation is validated semantically: the transformed program
// must compute the same arrays as the baseline (modulo floating-point
// reassociation). Structure checks confirm the expected loop shapes.
//
//===----------------------------------------------------------------------===//

#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"
#include "src/eval/Evaluator.h"
#include "src/transform/AltdescPragmas.h"
#include "src/transform/FusionDistribution.h"
#include "src/transform/GenericTiling.h"
#include "src/transform/Interchange.h"
#include "src/transform/LicmScalarRepl.h"
#include "src/transform/Tiling.h"
#include "src/transform/Unroll.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace cir;
using namespace transform;

std::unique_ptr<Program> parseOrDie(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::vector<double> runArray(const Program &P, const std::string &Array) {
  eval::EvalOptions Opts;
  Opts.CountCost = false;
  eval::ProgramEvaluator E(P, Opts);
  Status S = E.prepare();
  EXPECT_TRUE(S.ok()) << S.message() << "\n" << printProgram(P);
  if (!S.ok())
    return {};
  eval::RunResult R = E.run();
  EXPECT_TRUE(R.Ok) << R.Error << "\n" << printProgram(P);
  if (!R.Ok)
    return {};
  auto A = E.doubleArray(Array);
  EXPECT_TRUE(A.ok()) << A.message();
  return A.ok() ? *A : std::vector<double>{};
}

void expectSameArray(const std::vector<double> &A,
                     const std::vector<double> &B, const std::string &Context) {
  ASSERT_EQ(A.size(), B.size()) << Context;
  ASSERT_FALSE(A.empty()) << Context;
  for (size_t I = 0; I < A.size(); ++I) {
    double Tol = 1e-9 * std::max({1.0, std::abs(A[I]), std::abs(B[I])});
    ASSERT_NEAR(A[I], B[I], Tol) << Context << " at index " << I;
  }
}

/// Applies Fn to a fresh clone's region and checks the named output array is
/// unchanged relative to the baseline.
template <typename Fn>
std::unique_ptr<Program>
checkEquivalent(const std::string &Src, const std::string &RegionName,
                const std::string &OutArray, Fn &&Apply,
                const std::string &Context) {
  std::unique_ptr<Program> Base = parseOrDie(Src);
  if (!Base)
    return nullptr;
  std::vector<double> Expected = runArray(*Base, OutArray);

  std::unique_ptr<Program> Variant = Base->clone();
  std::vector<Block *> Regions = Variant->findRegions(RegionName);
  EXPECT_EQ(Regions.size(), 1u) << Context;
  if (Regions.size() != 1)
    return nullptr;
  TransformContext Ctx;
  Ctx.Prog = Variant.get();
  TransformResult R = Apply(*Regions[0], Ctx);
  EXPECT_TRUE(R.succeeded())
      << Context << ": " << R.Message << "\n"
      << printStmt(*Regions[0]);
  if (!R.succeeded())
    return nullptr;

  std::vector<double> Actual = runArray(*Variant, OutArray);
  expectSameArray(Expected, Actual,
                  Context + "\n" + printStmt(*Regions[0]));
  return Variant;
}

const char *Matmul = R"(
#define M 12
#define N 10
#define K 9
double A[M][K];
double B[K][N];
double C[M][N];
double alpha;
double beta;
int main() {
  int i, j, k;
#pragma @Locus loop=matmul
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < K; k++)
        C[i][j] = beta * C[i][j] + alpha * A[i][k] * B[k][j];
  return 0;
}
)";

int countLoops(Block &Region) { return static_cast<int>(listLoops(Region).size()); }

//===----------------------------------------------------------------------===//
// Interchange
//===----------------------------------------------------------------------===//

TEST(Interchange, AllMatmulPermutationsAreEquivalent) {
  const std::vector<std::vector<int>> Perms = {
      {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto &Perm : Perms) {
    InterchangeArgs Args;
    Args.Order = Perm;
    checkEquivalent(
        Matmul, "matmul", "C",
        [&](Block &R, TransformContext &Ctx) {
          return applyInterchange(R, Args, Ctx);
        },
        "interchange");
  }
}

TEST(Interchange, IdentityIsNoOp) {
  auto Prog = parseOrDie(Matmul);
  Block *Region = Prog->findRegions("matmul")[0];
  InterchangeArgs Args;
  Args.Order = {0, 1, 2};
  TransformContext Ctx;
  EXPECT_EQ(applyInterchange(*Region, Args, Ctx).Status, TransformStatus::NoOp);
}

TEST(Interchange, RejectsNonPermutation) {
  auto Prog = parseOrDie(Matmul);
  Block *Region = Prog->findRegions("matmul")[0];
  InterchangeArgs Args;
  Args.Order = {0, 0, 1};
  TransformContext Ctx;
  EXPECT_EQ(applyInterchange(*Region, Args, Ctx).Status, TransformStatus::Error);
}

TEST(Interchange, IllegalWhenDependenceFlips) {
  const char *Src = R"(
#define N 10
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=wave
  for (i = 1; i < N; i++)
    for (j = 0; j < N - 1; j++)
      A[i][j] = A[i - 1][j + 1] + 1.0;
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("wave")[0];
  InterchangeArgs Args;
  Args.Order = {1, 0};
  TransformContext Ctx;
  EXPECT_EQ(applyInterchange(*Region, Args, Ctx).Status,
            TransformStatus::Illegal);
}

TEST(Interchange, TriangularBoundsAreStructurallyIllegal) {
  const char *Src = R"(
#define N 10
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=tri
  for (i = 0; i < N; i++)
    for (j = i; j < N; j++)
      A[i][j] = 1.0;
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("tri")[0];
  InterchangeArgs Args;
  Args.Order = {1, 0};
  TransformContext Ctx;
  EXPECT_EQ(applyInterchange(*Region, Args, Ctx).Status,
            TransformStatus::Illegal);
}

//===----------------------------------------------------------------------===//
// Tiling
//===----------------------------------------------------------------------===//

TEST(Tiling, BandTilingEquivalent) {
  TilingArgs Args;
  Args.Factors = {4, 3, 5}; // deliberately non-dividing
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) { return applyTiling(R, Args, Ctx); },
      "band tiling");
  ASSERT_NE(Variant, nullptr);
  Block *Region = Variant->findRegions("matmul")[0];
  EXPECT_EQ(countLoops(*Region), 6);
}

TEST(Tiling, PartialBandAndUnitFactors) {
  TilingArgs Args;
  Args.Factors = {4, 1}; // tile i only, j untouched
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) { return applyTiling(R, Args, Ctx); },
      "partial band tiling");
  ASSERT_NE(Variant, nullptr);
  EXPECT_EQ(countLoops(*Variant->findRegions("matmul")[0]), 4);
}

TEST(Tiling, TwoLevelHierarchicalTiling) {
  // The Fig. 7 shape: tile the whole nest, then tile the intra-tile loops.
  checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) {
        TilingArgs L1;
        L1.Factors = {6, 6, 6};
        TransformResult R1 = applyTiling(R, L1, Ctx);
        if (!R1.succeeded())
          return R1;
        TilingArgs L2;
        L2.LoopPath = "0.0.0.0";
        L2.Factors = {2, 3, 2};
        return applyTiling(R, L2, Ctx);
      },
      "hierarchical tiling");
}

TEST(Tiling, SingleLoopFormHoistsTileLoop) {
  TilingArgs Args;
  Args.SingleLoopDepth = 3;
  Args.Factors = {4};
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) { return applyTiling(R, Args, Ctx); },
      "single-loop tiling");
  ASSERT_NE(Variant, nullptr);
  Block *Region = Variant->findRegions("matmul")[0];
  // kt, i, j, k
  EXPECT_EQ(countLoops(*Region), 4);
  auto Outer = resolveLoopPath(*Region, "0");
  ASSERT_TRUE(Outer.ok());
  EXPECT_EQ((*Outer)->Var, "kt");
}

TEST(Tiling, LeBoundLoop) {
  const char *Src = R"(
#define N 17
double A[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i <= N - 1; i++)
    A[i] = A[i] * 2.0 + 1.0;
}
)";
  TilingArgs Args;
  Args.Factors = {4};
  checkEquivalent(
      Src, "r", "A",
      [&](Block &R, TransformContext &Ctx) { return applyTiling(R, Args, Ctx); },
      "Le-bound tiling");
}

TEST(Tiling, IllegalOnNonPermutableBand) {
  const char *Src = R"(
#define N 10
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=wave
  for (i = 1; i < N; i++)
    for (j = 0; j < N - 1; j++)
      A[i][j] = A[i - 1][j + 1] + 1.0;
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("wave")[0];
  TilingArgs Args;
  Args.Factors = {4, 4};
  TransformContext Ctx;
  EXPECT_EQ(applyTiling(*Region, Args, Ctx).Status, TransformStatus::Illegal);
}

//===----------------------------------------------------------------------===//
// Unroll / unroll-and-jam
//===----------------------------------------------------------------------===//

TEST(Unroll, PartialWithRemainder) {
  UnrollArgs Args;
  Args.LoopPath = "0.0.0";
  Args.Factor = 4; // K=9 -> remainder 1
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) { return applyUnroll(R, Args, Ctx); },
      "partial unroll");
  ASSERT_NE(Variant, nullptr);
}

TEST(Unroll, FullUnrollOfConstantLoop) {
  UnrollArgs Args;
  Args.LoopPath = "0.0.0";
  Args.Factor = 16; // >= K=9: full unroll
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) { return applyUnroll(R, Args, Ctx); },
      "full unroll");
  ASSERT_NE(Variant, nullptr);
  EXPECT_EQ(countLoops(*Variant->findRegions("matmul")[0]), 2);
}

TEST(Unroll, SymbolicBounds) {
  const char *Src = R"(
#define N 11
double A[N];
int n = N;
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < n; i++)
    A[i] = A[i] + 1.0;
}
)";
  UnrollArgs Args;
  Args.Factor = 4;
  checkEquivalent(
      Src, "r", "A",
      [&](Block &R, TransformContext &Ctx) { return applyUnroll(R, Args, Ctx); },
      "symbolic unroll");
}

TEST(UnrollAndJam, OuterLoopJamsInner) {
  UnrollAndJamArgs Args;
  Args.Depth = 1;
  Args.Factor = 2;
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) {
        return applyUnrollAndJam(R, Args, Ctx);
      },
      "unroll-and-jam");
  ASSERT_NE(Variant, nullptr);
  // M=12 divisible by 2: main loop only; the jam keeps single j and k loops
  // inside (3 loops), since copies only differ in i.
  Block *Region = Variant->findRegions("matmul")[0];
  auto Loops = listLoops(*Region);
  ASSERT_GE(Loops.size(), 3u);
}

TEST(UnrollAndJam, MiddleLoopWithRemainder) {
  UnrollAndJamArgs Args;
  Args.Depth = 2; // j loop, N=10
  Args.Factor = 3;
  checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) {
        return applyUnrollAndJam(R, Args, Ctx);
      },
      "middle unroll-and-jam");
}

TEST(UnrollAndJam, IllegalOnBackwardInnerDependence) {
  const char *Src = R"(
#define N 10
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=wave
  for (i = 1; i < N; i++)
    for (j = 0; j < N - 1; j++)
      A[i][j] = A[i - 1][j + 1] + 1.0;
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("wave")[0];
  UnrollAndJamArgs Args;
  Args.Depth = 1;
  Args.Factor = 2;
  TransformContext Ctx;
  EXPECT_EQ(applyUnrollAndJam(*Region, Args, Ctx).Status,
            TransformStatus::Illegal);
}

//===----------------------------------------------------------------------===//
// Fusion / distribution
//===----------------------------------------------------------------------===//

TEST(Fusion, AdjacentCompatibleLoops) {
  const char *Src = R"(
#define N 16
double A[N];
double B[N];
double C[N];
int main() {
  int i;
#pragma @Locus block=body
  for (i = 0; i < N; i++)
    A[i] = B[i] * 2.0;
  for (i = 0; i < N; i++)
    C[i] = A[i] + 1.0;
#pragma @Locus endblock
}
)";
  auto Variant = checkEquivalent(
      Src, "body", "C",
      [&](Block &R, TransformContext &Ctx) {
        FusionArgs Args;
        return applyFusion(R, Args, Ctx);
      },
      "fusion");
  ASSERT_NE(Variant, nullptr);
  EXPECT_EQ(countLoops(*Variant->findRegions("body")[0]), 1);
}

TEST(Fusion, PreventedByForwardReference) {
  const char *Src = R"(
#define N 16
double A[N];
double B[N];
double C[N];
int main() {
  int i;
#pragma @Locus block=body
  for (i = 0; i < N; i++)
    A[i] = B[i] * 2.0;
  for (i = 0; i < N - 1; i++)
    C[i] = A[i + 1] + 1.0;
#pragma @Locus endblock
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("body")[0];
  FusionArgs Args;
  TransformContext Ctx;
  EXPECT_EQ(applyFusion(*Region, Args, Ctx).Status, TransformStatus::Illegal);
}

TEST(Fusion, HeaderMismatchIsIllegal) {
  const char *Src = R"(
#define N 16
double A[N];
int main() {
  int i;
#pragma @Locus block=body
  for (i = 0; i < N; i++)
    A[i] = 1.0;
  for (i = 0; i < N - 2; i++)
    A[i] = A[i] + 1.0;
#pragma @Locus endblock
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("body")[0];
  FusionArgs Args;
  TransformContext Ctx;
  EXPECT_EQ(applyFusion(*Region, Args, Ctx).Status, TransformStatus::Illegal);
}

TEST(Distribution, SplitsIndependentStatements) {
  const char *Src = R"(
#define N 16
double A[N];
double B[N];
double X[N];
double Y[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < N; i++) {
    A[i] = X[i] * 2.0;
    B[i] = Y[i] + 3.0;
  }
}
)";
  auto Variant = checkEquivalent(
      Src, "r", "A",
      [&](Block &R, TransformContext &Ctx) {
        DistributionArgs Args;
        return applyDistribution(R, Args, Ctx);
      },
      "distribution");
  ASSERT_NE(Variant, nullptr);
  EXPECT_EQ(countLoops(*Variant->findRegions("r")[0]), 2);
}

TEST(Distribution, KeepsRecurrenceTogether) {
  const char *Src = R"(
#define N 16
double A[N];
double B[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 1; i < N; i++) {
    A[i] = B[i - 1] + 1.0;
    B[i] = A[i] * 2.0;
  }
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("r")[0];
  DistributionArgs Args;
  TransformContext Ctx;
  // A->B loop-independent flow; B->A carried flow: a cycle, one group only.
  EXPECT_EQ(applyDistribution(*Region, Args, Ctx).Status,
            TransformStatus::NoOp);
}

TEST(Distribution, KeepsScalarUsersTogether) {
  const char *Src = R"(
#define N 16
double A[N];
double B[N];
double X[N];
int main() {
  int i;
  double t;
#pragma @Locus loop=r
  for (i = 0; i < N; i++) {
    t = X[i] * 2.0;
    A[i] = t + 1.0;
    B[i] = t * 3.0;
  }
}
)";
  auto Variant = checkEquivalent(
      Src, "r", "A",
      [&](Block &R, TransformContext &Ctx) {
        DistributionArgs Args;
        TransformResult Res = applyDistribution(R, Args, Ctx);
        // A single scalar-linked group is a legitimate NoOp.
        if (Res.Status == TransformStatus::NoOp)
          return TransformResult::success();
        return Res;
      },
      "scalar distribution");
  ASSERT_NE(Variant, nullptr);
}

//===----------------------------------------------------------------------===//
// LICM / scalar replacement
//===----------------------------------------------------------------------===//

TEST(Licm, HoistsInvariantSubexpression) {
  const char *Src = R"(
#define N 12
double A[N][N];
double B[N];
double c;
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = B[i] * c + A[i][j];
}
)";
  auto Variant = checkEquivalent(
      Src, "r", "A",
      [&](Block &R, TransformContext &Ctx) {
        LicmArgs Args;
        return applyLicm(R, Args, Ctx);
      },
      "licm");
  ASSERT_NE(Variant, nullptr);
  // B[i] * c is hoisted out of the j loop.
  std::string Printed = printStmt(*Variant->findRegions("r")[0]);
  EXPECT_NE(Printed.find("licm"), std::string::npos) << Printed;
}

TEST(Licm, CascadesScalarDefinitionsOutward) {
  const char *Src = R"(
#define N 8
int map[N];
double out[N][N];
double w;
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      int m = map[i];
      out[i][j] = out[i][j] + w * m;
    }
}
)";
  auto Variant = checkEquivalent(
      Src, "r", "out",
      [&](Block &R, TransformContext &Ctx) {
        LicmArgs Args;
        return applyLicm(R, Args, Ctx);
      },
      "licm cascade");
  ASSERT_NE(Variant, nullptr);
  // The declaration of m must have left the j loop.
  Block *Region = Variant->findRegions("r")[0];
  auto Inner = listInnerLoops(*Region);
  ASSERT_EQ(Inner.size(), 1u);
  bool DeclInInner = false;
  for (const auto &S : Inner[0].Loop->Body->Stmts)
    if (isa<DeclStmt>(S.get()))
      DeclInInner = true;
  EXPECT_FALSE(DeclInInner);
}

TEST(Licm, DoesNotHoistVariantCode) {
  const char *Src = R"(
#define N 8
double A[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < N; i++)
    A[i] = A[i] * 2.0;
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("r")[0];
  LicmArgs Args;
  TransformContext Ctx;
  EXPECT_EQ(applyLicm(*Region, Args, Ctx).Status, TransformStatus::NoOp);
}

TEST(ScalarRepl, PromotesReductionTarget) {
  auto Variant = checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) {
        // Put k innermost-reduction form first: i, j outer; C[i][j] is
        // invariant in k already in the baseline.
        ScalarReplArgs Args;
        return applyScalarRepl(R, Args, Ctx);
      },
      "scalar replacement");
  ASSERT_NE(Variant, nullptr);
  Block *Region = Variant->findRegions("matmul")[0];
  auto Inner = listInnerLoops(*Region);
  ASSERT_EQ(Inner.size(), 1u);
  // No reference to C inside the innermost loop anymore.
  bool UsesC = false;
  forEachStmt(*Inner[0].Loop, [&](Stmt &S) {
    forEachExpr(S, [&](ExprPtr &E) {
      std::set<std::string> Arrays;
      collectArrays(*E, Arrays);
      if (Arrays.count("C"))
        UsesC = true;
    });
  });
  EXPECT_FALSE(UsesC) << printStmt(*Region);
}

TEST(ScalarRepl, SkipsVariantSubscripts) {
  const char *Src = R"(
#define N 8
double A[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < N; i++)
    A[i] = A[i] + 1.0;
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("r")[0];
  ScalarReplArgs Args;
  TransformContext Ctx;
  EXPECT_EQ(applyScalarRepl(*Region, Args, Ctx).Status, TransformStatus::NoOp);
}

//===----------------------------------------------------------------------===//
// Generic (skewed) tiling
//===----------------------------------------------------------------------===//

const char *Heat2d = R"(
#define T 6
#define N 10
double A[2][N + 2][N + 2];
int main() {
  int t, i, j;
#pragma @Locus loop=heat2d
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      for (j = 1; j < N + 1; j++)
        A[(t + 1) % 2][i][j] = 0.125 * (A[t % 2][i + 1][j] - 2.0 * A[t % 2][i][j] + A[t % 2][i - 1][j])
          + 0.125 * (A[t % 2][i][j + 1] - 2.0 * A[t % 2][i][j] + A[t % 2][i][j - 1])
          + A[t % 2][i][j];
  return 0;
}
)";

TEST(GenericTiling, SkewedTimeTilingHeat2d) {
  GenericTilingArgs Args;
  int64_t S = 4;
  Args.Matrix = {{S, 0, 0}, {-S, S, 0}, {-S, 0, S}};
  auto Variant = checkEquivalent(
      Heat2d, "heat2d", "A",
      [&](Block &R, TransformContext &Ctx) {
        return applyGenericTiling(R, Args, Ctx);
      },
      "skewed tiling heat2d");
  ASSERT_NE(Variant, nullptr);
  EXPECT_EQ(countLoops(*Variant->findRegions("heat2d")[0]), 6);
}

TEST(GenericTiling, SkewedTimeTilingHeat1d) {
  const char *Src = R"(
#define T 7
#define N 30
double A[2][N + 2];
int main() {
  int t, i;
#pragma @Locus loop=heat1d
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      A[(t + 1) % 2][i] = 0.125 * (A[t % 2][i + 1] - 2.0 * A[t % 2][i] + A[t % 2][i - 1]) + A[t % 2][i];
}
)";
  GenericTilingArgs Args;
  Args.Matrix = {{4, 0}, {-4, 4}};
  checkEquivalent(
      Src, "heat1d", "A",
      [&](Block &R, TransformContext &Ctx) {
        return applyGenericTiling(R, Args, Ctx);
      },
      "skewed tiling heat1d");
}

TEST(GenericTiling, SeidelInPlace) {
  const char *Src = R"(
#define T 5
#define N 12
double A[N][N];
int main() {
  int t, i, j;
#pragma @Locus loop=seidel
  for (t = 0; t < T; t++)
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = (A[i - 1][j] + A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j]) / 5.0;
}
)";
  GenericTilingArgs Args;
  Args.Matrix = {{3, 0, 0}, {-3, 3, 0}, {-3, 0, 3}};
  checkEquivalent(
      Src, "seidel", "A",
      [&](Block &R, TransformContext &Ctx) {
        return applyGenericTiling(R, Args, Ctx);
      },
      "skewed tiling seidel");
}

TEST(GenericTiling, RejectsMalformedMatrix) {
  auto Prog = parseOrDie(Heat2d);
  Block *Region = Prog->findRegions("heat2d")[0];
  TransformContext Ctx;
  GenericTilingArgs Args;
  Args.Matrix = {{4, 1, 0}, {-4, 4, 0}, {-4, 0, 4}}; // upper entry nonzero
  EXPECT_EQ(applyGenericTiling(*Region, Args, Ctx).Status,
            TransformStatus::Error);
  Args.Matrix = {{4, 0}, {-4, 4}, {0, 0}}; // not square
  EXPECT_EQ(applyGenericTiling(*Region, Args, Ctx).Status,
            TransformStatus::Error);
}

//===----------------------------------------------------------------------===//
// Altdesc and pragmas
//===----------------------------------------------------------------------===//

TEST(Altdesc, ReplacesPlaceholderStatement) {
  const char *Src = R"(
#define N 8
double A[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < N; i++) {
    A[i] = 1.0;
    compute_here();
  }
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("r")[0];
  TransformContext Ctx;
  Ctx.Snippets["patch"] = "A[i] = A[i] * 3.0;";
  AltdescArgs Args;
  Args.StmtPath = "0.1";
  Args.Source = "patch";
  TransformResult R = applyAltdesc(*Region, Args, Ctx);
  ASSERT_TRUE(R.succeeded()) << R.Message;
  std::string Printed = printStmt(*Region);
  EXPECT_EQ(Printed.find("compute_here"), std::string::npos);
  EXPECT_NE(Printed.find("A[i] * 3.0"), std::string::npos);
  // Program now evaluates (the unknown call would have failed).
  eval::RunResult Run = eval::evaluateProgram(*Prog);
  EXPECT_TRUE(Run.Ok) << Run.Error;
}

TEST(Altdesc, ReplacesWholeRegion) {
  const char *Src = R"(
#define N 8
double A[N];
int main() {
  int i;
#pragma @Locus block=whole
  A[0] = 1.0;
#pragma @Locus endblock
}
)";
  auto Prog = parseOrDie(Src);
  Block *Region = Prog->findRegions("whole")[0];
  TransformContext Ctx;
  AltdescArgs Args;
  Args.Source = "for (i = 0; i < 8; i++) A[i] = 2.0;";
  ASSERT_TRUE(applyAltdesc(*Region, Args, Ctx).succeeded());
  EXPECT_EQ(countLoops(*Region), 1);
}

TEST(Pragmas, AttachAndDeduplicate) {
  auto Prog = parseOrDie(Matmul);
  Block *Region = Prog->findRegions("matmul")[0];
  TransformContext Ctx;
  PragmaArgs Iv;
  Iv.LoopPath = "0.0.0";
  Iv.Text = "ivdep";
  EXPECT_TRUE(applyPragma(*Region, Iv, Ctx).succeeded());
  EXPECT_EQ(applyPragma(*Region, Iv, Ctx).Status, TransformStatus::NoOp);

  OmpForArgs Omp;
  Omp.LoopPath = "0";
  Omp.Schedule = "dynamic";
  Omp.Chunk = 4;
  EXPECT_TRUE(applyOmpFor(*Region, Omp, Ctx).succeeded());
  auto Loop = resolveLoopPath(*Region, "0");
  ASSERT_TRUE(Loop.ok());
  ASSERT_EQ((*Loop)->Pragmas.size(), 1u);
  EXPECT_EQ((*Loop)->Pragmas[0], "omp parallel for schedule(dynamic,4)");
}

TEST(Pragmas, RejectsBadSchedule) {
  auto Prog = parseOrDie(Matmul);
  Block *Region = Prog->findRegions("matmul")[0];
  TransformContext Ctx;
  OmpForArgs Omp;
  Omp.Schedule = "guided";
  EXPECT_EQ(applyOmpFor(*Region, Omp, Ctx).Status, TransformStatus::Error);
}

//===----------------------------------------------------------------------===//
// Composition: the full Fig. 7 pipeline shape
//===----------------------------------------------------------------------===//

TEST(Composition, InterchangeTileTileOmp) {
  checkEquivalent(
      Matmul, "matmul", "C",
      [&](Block &R, TransformContext &Ctx) {
        InterchangeArgs Inter;
        Inter.Order = {0, 2, 1};
        TransformResult R1 = applyInterchange(R, Inter, Ctx);
        if (!R1.succeeded())
          return R1;
        TilingArgs T1;
        T1.Factors = {4, 4, 4};
        TransformResult R2 = applyTiling(R, T1, Ctx);
        if (!R2.succeeded())
          return R2;
        TilingArgs T2;
        T2.LoopPath = "0.0.0.0";
        T2.Factors = {2, 2, 2};
        TransformResult R3 = applyTiling(R, T2, Ctx);
        if (!R3.succeeded())
          return R3;
        OmpForArgs Omp;
        Omp.LoopPath = "0";
        return applyOmpFor(R, Omp, Ctx);
      },
      "fig7 pipeline");
}

} // namespace
} // namespace locus
