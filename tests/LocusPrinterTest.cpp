//===- LocusPrinterTest.cpp - printer and direct-program export tests ---------===//

#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusParser.h"
#include "src/locus/LocusPrinter.h"
#include "src/search/Search.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace lang;

std::unique_ptr<LocusProgram> parseL(const std::string &Src) {
  auto P = parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

TEST(LocusPrinter, RoundTripsPaperPrograms) {
  for (const std::string &Src :
       {workloads::dgemmLocusFig5(), workloads::dgemmLocusFig7(512),
        workloads::stencilLocusFig9(16, 128),
        workloads::kripkeLocusFig11("Scattering"),
        workloads::fig13GenericProgram()}) {
    auto P1 = parseL(Src);
    ASSERT_NE(P1, nullptr);
    std::string Printed = printLocusProgram(*P1);
    auto P2 = parseLocusProgram(Printed);
    ASSERT_TRUE(P2.ok()) << P2.message() << "\n" << Printed;
    // Fixed point: printing the reparse gives identical text.
    EXPECT_EQ(Printed, printLocusProgram(**P2)) << Printed;
  }
}

TEST(LocusPrinter, DirectExportPinsEverything) {
  auto LP = parseL(workloads::dgemmLocusFig5());
  auto CP = cir::parseProgram(workloads::dgemmSource(16, 16, 16));
  ASSERT_TRUE(CP.ok());
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP->get();
  ASSERT_TRUE(Interp.extractSpace(**CP, Space, TCtx).Ok);

  // Pin: alternative 0 (2D tiling) with tileI=8, tileJ=16.
  search::Point P;
  for (const search::ParamDef &Def : Space.Params) {
    if (Def.Label == "tileI")
      P.Values[Def.Id] = int64_t(8);
    else if (Def.Label == "tileJ")
      P.Values[Def.Id] = int64_t(16);
    else
      P.Values[Def.Id] = int64_t(0); // OR selector: first alternative
  }
  auto Direct = exportDirectProgram(*LP, P);
  ASSERT_TRUE(Direct.ok()) << Direct.message();
  std::string Text = printLocusProgram(**Direct);

  // No search constructs survive in the executed path, and the pinned
  // values appear literally.
  EXPECT_EQ(Text.find("poweroftwo"), std::string::npos) << Text;
  EXPECT_NE(Text.find("8"), std::string::npos);
  EXPECT_NE(Text.find("16"), std::string::npos);

  // The exported program parses and runs as a direct program, producing the
  // same variant as applyPoint with the original program.
  auto Reparsed = parseLocusProgram(Text);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.message() << "\n" << Text;

  auto V1 = (*CP)->clone();
  auto V2 = (*CP)->clone();
  transform::TransformContext T1, T2;
  T1.Prog = V1.get();
  T2.Prog = V2.get();
  ExecOutcome O1 = Interp.applyPoint(*V1, P, T1);
  LocusInterpreter DirectInterp(**Reparsed, Reg);
  ExecOutcome O2 = DirectInterp.applyDirect(*V2, T2);
  ASSERT_TRUE(O1.Ok) << O1.Error;
  ASSERT_TRUE(O2.Ok) << O2.Error << "\n" << Text;
  EXPECT_EQ(O1.TransformsApplied, O2.TransformsApplied);
  EXPECT_EQ(cir::listLoops(*V1->findRegions("matmul")[0]).size(),
            cir::listLoops(*V2->findRegions("matmul")[0]).size());
}

TEST(LocusPrinter, DirectExportOfFig7) {
  auto LP = parseL(workloads::dgemmLocusFig7(64));
  auto CP = cir::parseProgram(workloads::dgemmSource(32, 32, 32));
  ASSERT_TRUE(CP.ok());
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP->get();
  ASSERT_TRUE(Interp.extractSpace(**CP, Space, TCtx).Ok);

  search::Point P;
  for (const search::ParamDef &Def : Space.Params)
    P.Values[Def.Id] = search::enumerateValues(Def)[1];
  auto Direct = exportDirectProgram(*LP, P);
  ASSERT_TRUE(Direct.ok()) << Direct.message();
  std::string Text = printLocusProgram(**Direct);
  EXPECT_EQ(Text.find("poweroftwo"), std::string::npos) << Text;
  EXPECT_EQ(Text.find(" OR "), std::string::npos) << Text;
  auto Reparsed = parseLocusProgram(Text);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.message() << "\n" << Text;
}

} // namespace
} // namespace locus
