//===- CirParserTest.cpp - MiniC front end tests ---------------------------===//

#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"

#include <gtest/gtest.h>

namespace locus {
namespace cir {
namespace {

const char *MatmulSource = R"(
#define M 16
#define N 16
#define K 16
double A[M][K];
double B[K][N];
double C[M][N];
double alpha;
double beta;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
#pragma @Locus loop=matmul
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < K; k++)
        C[i][j] = beta * C[i][j] + alpha * A[i][k] * B[k][j];
  t_end = rtclock();
  print_array();
  return 0;
}
)";

TEST(CirParser, ParsesMatmulWithRegion) {
  auto Prog = parseProgram(MatmulSource);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  std::vector<Block *> Regions = (*Prog)->findRegions("matmul");
  ASSERT_EQ(Regions.size(), 1u);
  ASSERT_EQ(Regions[0]->Stmts.size(), 1u);
  auto *Loop = dyn_cast<ForStmt>(Regions[0]->Stmts[0].get());
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Var, "i");
  EXPECT_TRUE(isPerfectNest(*Loop));
  EXPECT_EQ(loopNestDepth(*Loop), 3);
}

TEST(CirParser, DefinesResolveArrayDims) {
  auto Prog = parseProgram(MatmulSource);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  const DeclStmt *A = (*Prog)->findGlobal("A");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Dims, (std::vector<int64_t>{16, 16}));
  EXPECT_EQ(A->Elem, ElemType::Double);
}

TEST(CirParser, BlockRegion) {
  const char *Src = R"(
double x;
int main() {
#pragma @Locus block=body
  x = 1.0;
  x = x + 2.0;
#pragma @Locus endblock
  return 0;
}
)";
  auto Prog = parseProgram(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  std::vector<Block *> Regions = (*Prog)->findRegions("body");
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_EQ(Regions[0]->Stmts.size(), 2u);
}

TEST(CirParser, UnterminatedBlockIsError) {
  const char *Src = R"(
double x;
int main() {
#pragma @Locus block=body
  x = 1.0;
}
)";
  auto Prog = parseProgram(Src);
  EXPECT_FALSE(Prog.ok());
}

TEST(CirParser, LoopAnnotationRequiresFor) {
  const char *Src = R"(
double x;
int main() {
#pragma @Locus loop=oops
  x = 1.0;
}
)";
  auto Prog = parseProgram(Src);
  EXPECT_FALSE(Prog.ok());
}

TEST(CirParser, OrdinaryPragmasAttachToNextStmt) {
  const char *Src = R"(
double A[8];
int main() {
  int i;
#pragma ivdep
#pragma vector always
  for (i = 0; i < 8; i++)
    A[i] = 0.0;
}
)";
  auto Prog = parseProgram(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  ASSERT_FALSE((*Prog)->Body->Stmts.empty());
  Stmt *Last = (*Prog)->Body->Stmts.back().get();
  ASSERT_TRUE(isa<ForStmt>(Last));
  ASSERT_EQ(Last->Pragmas.size(), 2u);
  EXPECT_EQ(Last->Pragmas[0], "ivdep");
  EXPECT_EQ(Last->Pragmas[1], "vector always");
}

TEST(CirParser, ForVariants) {
  const char *Src = R"(
double A[32];
int main() {
  for (int t = 2; t <= 30; t += 2)
    A[t] = 1.0;
}
)";
  auto Prog = parseProgram(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  auto *Loop = dyn_cast<ForStmt>((*Prog)->Body->Stmts.back().get());
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Step, 2);
  EXPECT_EQ(Loop->Op, BoundOp::Le);
}

TEST(CirParser, ModuloAndNestedIndexing) {
  const char *Src = R"(
#define T 4
#define N 8
double A[2][N][N];
int main() {
  int t, i, j;
  for (t = 0; t < T; t++)
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[(t + 1) % 2][i][j] = 0.125 * (A[t % 2][i + 1][j] - 2.0 * A[t % 2][i][j] + A[t % 2][i - 1][j]);
}
)";
  auto Prog = parseProgram(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
}

TEST(CirParser, SyntaxErrorsReportLine) {
  auto Prog = parseProgram("int main() { for (i = 0; i > 10; i--) {} }");
  ASSERT_FALSE(Prog.ok());
  EXPECT_NE(Prog.message().find("line"), std::string::npos);
}

TEST(CirPrinter, RoundTripsMatmul) {
  auto Prog = parseProgram(MatmulSource);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  std::string Printed = printProgram(**Prog);
  auto Reparsed = parseProgram(Printed);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.message() << "\n" << Printed;
  EXPECT_EQ(Printed, printProgram(**Reparsed));
  // Region survives the round trip.
  EXPECT_EQ((*Reparsed)->findRegions("matmul").size(), 1u);
}

TEST(CirPrinter, PreservesPrecedence) {
  auto Prog = parseProgram(
      "double x; double y; int main() { x = (x + y) * (x - y) / (x * y); }");
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  std::string Printed = printProgram(**Prog);
  EXPECT_NE(Printed.find("(x + y) * (x - y) / (x * y)"), std::string::npos)
      << Printed;
}

TEST(PathIndex, ResolvesHierarchicalPaths) {
  auto Prog = parseProgram(MatmulSource);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  Block *Region = (*Prog)->findRegions("matmul")[0];

  auto Outer = resolveLoopPath(*Region, "0");
  ASSERT_TRUE(Outer.ok()) << Outer.message();
  EXPECT_EQ((*Outer)->Var, "i");

  auto Inner = resolveLoopPath(*Region, "0.0.0");
  ASSERT_TRUE(Inner.ok()) << Inner.message();
  EXPECT_EQ((*Inner)->Var, "k");

  EXPECT_FALSE(resolveLoopPath(*Region, "1").ok());
  EXPECT_FALSE(resolveLoopPath(*Region, "0.0.0.0").ok());
  EXPECT_FALSE(resolvePath(*Region, "0.x").ok());
}

TEST(PathIndex, InnerAndOuterLoops) {
  auto Prog = parseProgram(MatmulSource);
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  Block *Region = (*Prog)->findRegions("matmul")[0];

  std::vector<LoopEntry> Inner = listInnerLoops(*Region);
  ASSERT_EQ(Inner.size(), 1u);
  EXPECT_EQ(Inner[0].Path, "0.0.0");
  EXPECT_EQ(Inner[0].Loop->Var, "k");

  std::vector<LoopEntry> Outer = listOuterLoops(*Region);
  ASSERT_EQ(Outer.size(), 1u);
  EXPECT_EQ(Outer[0].Path, "0");
}

TEST(AstUtils, SubstituteAndFold) {
  auto Prog = parseProgram("double A[8]; int main() { int i; A[i + 0 * 4] = 1.0; }");
  ASSERT_TRUE(Prog.ok()) << Prog.message();
  Stmt *Assign = (*Prog)->Body->Stmts.back().get();
  substituteVarInStmt(*Assign, "i", *makeInt(3));
  forEachExpr(*Assign, [](ExprPtr &E) { E = foldExpr(std::move(E)); });
  EXPECT_EQ(printStmt(*Assign), "A[3] = 1.0;\n");
}

TEST(AstUtils, RegionHashDetectsChange) {
  auto P1 = parseProgram(MatmulSource);
  ASSERT_TRUE(P1.ok());
  uint64_t H1 = hashRegion(*(*P1)->findRegions("matmul")[0]);
  uint64_t H1Again = hashRegion(*(*P1)->findRegions("matmul")[0]);
  EXPECT_EQ(H1, H1Again);

  std::string Changed = MatmulSource;
  size_t Pos = Changed.find("beta * C");
  ASSERT_NE(Pos, std::string::npos);
  Changed.replace(Pos, 4, "alpha");
  auto P2 = parseProgram(Changed);
  ASSERT_TRUE(P2.ok());
  uint64_t H2 = hashRegion(*(*P2)->findRegions("matmul")[0]);
  EXPECT_NE(H1, H2);
}

TEST(AstUtils, CloneIsDeep) {
  auto Prog = parseProgram(MatmulSource);
  ASSERT_TRUE(Prog.ok());
  auto Copy = (*Prog)->clone();
  Block *Region = Copy->findRegions("matmul")[0];
  auto *Loop = cast<ForStmt>(Region->Stmts[0].get());
  Loop->Var = "z";
  auto *Orig = cast<ForStmt>((*Prog)->findRegions("matmul")[0]->Stmts[0].get());
  EXPECT_EQ(Orig->Var, "i");
}

} // namespace
} // namespace cir
} // namespace locus
