//===- subprocess_victim.cpp - Misbehaving binary for sandbox tests -----------===//
//
// A tiny standalone binary whose first argument selects a failure mode. The
// Subprocess and fault-injection tests run it instead of compiling victims
// at test time, so the suites need no compiler and exercise real processes:
//
//   exit N            exit with status N
//   sleep SECS        sleep, then exit 0
//   hang SECS         ignore SIGTERM and sleep (tests SIGKILL escalation)
//   segv              dereference null
//   abrt              abort()
//   spin SECS         burn CPU (tests RLIMIT_CPU -> SIGXCPU)
//   fwrite PATH       write 64 MiB to PATH (tests RLIMIT_FSIZE -> SIGXFSZ)
//   oom MBYTES        touch MBYTES of heap (tests RLIMIT_AS)
//   spew BYTES        write BYTES of 'x' to stdout (tests capture caps)
//   garbage           print a non-harness line (tests strict output parsing)
//   metric SECS SUM   print a valid harness report
//   orphan SECS       fork a child that sleeps SECS, print "CHILD <pid>",
//                     then hang with SIGTERM ignored (tests group kill)
//
// Built without sanitizers (it crashes on purpose and must respect
// RLIMIT_AS) and located by the tests through LOCUS_SUBPROCESS_VICTIM.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <unistd.h>

namespace {

void sleepSeconds(double Secs) {
  timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Secs);
  Ts.tv_nsec = static_cast<long>((Secs - static_cast<double>(Ts.tv_sec)) * 1e9);
  while (nanosleep(&Ts, &Ts) != 0 && errno == EINTR) {
  }
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return 99;
  const char *Mode = argv[1];
  double Num = argc > 2 ? std::atof(argv[2]) : 0;

  if (std::strcmp(Mode, "exit") == 0)
    return static_cast<int>(Num);

  if (std::strcmp(Mode, "sleep") == 0) {
    sleepSeconds(Num);
    return 0;
  }

  if (std::strcmp(Mode, "hang") == 0) {
    std::signal(SIGTERM, SIG_IGN);
    sleepSeconds(Num > 0 ? Num : 3600);
    return 0;
  }

  if (std::strcmp(Mode, "segv") == 0) {
    volatile int *P = nullptr;
    *P = 42; // NOLINT: the crash is the point
    return 0;
  }

  if (std::strcmp(Mode, "abrt") == 0)
    std::abort();

  if (std::strcmp(Mode, "spin") == 0) {
    timespec Start, Now;
    clock_gettime(CLOCK_MONOTONIC, &Start);
    volatile unsigned long long X = 1;
    for (;;) {
      for (int I = 0; I < 1000000; ++I)
        X = X * 2862933555777941757ULL + 3037000493ULL;
      clock_gettime(CLOCK_MONOTONIC, &Now);
      if (Num > 0 && static_cast<double>(Now.tv_sec - Start.tv_sec) > Num)
        return 0;
    }
  }

  if (std::strcmp(Mode, "fwrite") == 0) {
    const char *Path = argc > 2 ? argv[2] : "victim.out";
    FILE *F = std::fopen(Path, "w");
    if (!F)
      return 98;
    char Buf[65536];
    std::memset(Buf, 'y', sizeof(Buf));
    for (int I = 0; I < 1024; ++I) // 64 MiB
      if (std::fwrite(Buf, 1, sizeof(Buf), F) != sizeof(Buf)) {
        std::fclose(F);
        return 97;
      }
    std::fclose(F);
    return 0;
  }

  if (std::strcmp(Mode, "oom") == 0) {
    size_t Want = static_cast<size_t>(Num > 0 ? Num : 4096) * 1024 * 1024;
    size_t Chunk = 16 * 1024 * 1024;
    for (size_t Got = 0; Got < Want; Got += Chunk) {
      char *P = static_cast<char *>(std::malloc(Chunk));
      if (!P) {
        std::fprintf(stderr, "allocation failed after %zu MiB\n",
                     Got / (1024 * 1024));
        std::abort();
      }
      std::memset(P, 1, Chunk); // touch it so the pages are real
    }
    return 0;
  }

  if (std::strcmp(Mode, "spew") == 0) {
    size_t Total = static_cast<size_t>(Num > 0 ? Num : 1 << 20);
    char Buf[65536];
    std::memset(Buf, 'x', sizeof(Buf));
    while (Total > 0) {
      size_t N = Total < sizeof(Buf) ? Total : sizeof(Buf);
      if (std::fwrite(Buf, 1, N, stdout) != N)
        return 96;
      Total -= N;
    }
    return 0;
  }

  if (std::strcmp(Mode, "garbage") == 0) {
    std::printf("segmentation fault (not really): 0xdeadbeef\n");
    return 0;
  }

  if (std::strcmp(Mode, "metric") == 0) {
    double Sum = argc > 3 ? std::atof(argv[3]) : 1.5;
    std::printf("LOCUS_TIME %.9f\nLOCUS_CHECKSUM %.9f\n", Num, Sum);
    return 0;
  }

  if (std::strcmp(Mode, "orphan") == 0) {
    double ChildSecs = Num > 0 ? Num : 3600;
    pid_t Child = fork();
    if (Child == 0) {
      std::signal(SIGTERM, SIG_IGN);
      sleepSeconds(ChildSecs);
      _exit(0);
    }
    std::printf("CHILD %d\n", static_cast<int>(Child));
    std::fflush(stdout);
    std::signal(SIGTERM, SIG_IGN);
    sleepSeconds(3600);
    return 0;
  }

  std::fprintf(stderr, "unknown mode: %s\n", Mode);
  return 99;
}
