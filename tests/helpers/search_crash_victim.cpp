//===- search_crash_victim.cpp - Real search run for crash torture ------------===//
//
// A minimal orchestrator driver spawned by CrashTortureTest and
// ServiceTortureTest: runs the Fig. 5 DGEMM search on the tiny machine with
// a journal (and optionally a persistent cache directory or the tuning
// service), printing a machine-parsable summary the parent compares across
// crashed/resumed/uninterrupted runs.
//
//   search_crash_victim --journal FILE [--resume] [--cache-dir DIR]
//                       [--cache-readonly] [--budget N] [--seed N]
//                       [--searcher NAME] [--crash-at SPEC]
//                       [--serve N --queue-dir DIR [--lease-timeout S]
//                        [--poison-deaths K] [--max-respawns N]
//                        [--backoff S] [--worker-crash-at SPEC]
//                        [--die-on-task N] [--worker-die-immediately]]
//                       [--worker --queue-dir DIR [--worker-id ID]
//                        [--heartbeat S] [--max-heartbeats N]]
//
// --crash-at SPEC arms the RecordLog crash injector (the SPEC lands in
// LOCUS_RECORDLOG_CRASH_AT before any log is opened): the Nth append
// SIGKILLs this process mid-write, the closest a test can get to yanking
// the power cord. The parent then re-runs with --resume and expects the
// same BEST/METRIC lines the uninterrupted run prints.
//
// The injector env is *cleared* at startup: a crash-armed coordinator must
// not leak its spec into the workers it spawns (they re-exec this binary
// and inherit the environment). Worker crash specs travel via argv instead:
// --worker-crash-at arms slot 0's first incarnation only.
//
// Output on success (exit 0):
//   BEST <id=value;id=value;...>
//   METRIC <best metric, %.17g>
//   EVALS <fresh> REPLAYED <replayed>
//   CACHE loaded=<n> appended=<n> hits=<n> misses=<n> warnings=<n> degraded=<0|1>
//   SERVICE ... (serve mode only)
//   INTERRUPTED <evals>  (only when stopped by SIGTERM/SIGINT)
// Worker mode prints: WORKER tasks=<n> claims_lost=<n> heartbeats=<n>
// On failure: the orchestrator's error on stderr, exit 1.
//
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/support/Signals.h"
#include "src/workloads/Workloads.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

using namespace locus;

int main(int argc, char **argv) {
  // See header comment: worker processes inherit the coordinator's
  // environment, and a leaked crash spec would SIGKILL every worker at the
  // same append count instead of testing the coordinator's own crash.
  ::unsetenv("LOCUS_RECORDLOG_CRASH_AT");

  driver::OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 30;
  Opts.Seed = 5;

  bool Worker = false;
  int ServeWorkers = 0;
  bool Serve = false;
  std::string QueueDir, WorkerId = "worker";
  std::string WorkerCrashAt;
  long DieOnTask = 0;
  bool WorkerDieImmediately = false;
  double Heartbeat = 0.25;
  int MaxHeartbeats = -1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--journal") {
      if (const char *V = Next())
        Opts.JournalPath = V;
    } else if (Arg == "--resume") {
      Opts.ResumeFromJournal = true;
    } else if (Arg == "--cache-dir") {
      if (const char *V = Next())
        Opts.CacheDir = V;
    } else if (Arg == "--cache-readonly") {
      Opts.CacheReadOnly = true;
    } else if (Arg == "--budget") {
      if (const char *V = Next())
        Opts.MaxEvaluations = std::atoi(V);
    } else if (Arg == "--seed") {
      if (const char *V = Next())
        Opts.Seed = static_cast<uint64_t>(std::strtoull(V, nullptr, 10));
    } else if (Arg == "--searcher") {
      if (const char *V = Next())
        Opts.SearcherName = V;
    } else if (Arg == "--crash-at") {
      // Must be armed before the first RecordLog append in this process.
      if (const char *V = Next())
        ::setenv("LOCUS_RECORDLOG_CRASH_AT", V, 1);
    } else if (Arg == "--serve") {
      Serve = true;
      if (const char *V = Next())
        ServeWorkers = std::atoi(V);
    } else if (Arg == "--worker") {
      Worker = true;
    } else if (Arg == "--queue-dir") {
      if (const char *V = Next())
        QueueDir = V;
    } else if (Arg == "--worker-id") {
      if (const char *V = Next())
        WorkerId = V;
    } else if (Arg == "--lease-timeout") {
      if (const char *V = Next())
        Opts.Serve.LeaseTimeoutSeconds = std::atof(V);
    } else if (Arg == "--poison-deaths") {
      if (const char *V = Next())
        Opts.Serve.PoisonWorkerDeaths = std::atoi(V);
    } else if (Arg == "--max-respawns") {
      if (const char *V = Next())
        Opts.Serve.MaxRespawnsPerSlot = std::atoi(V);
    } else if (Arg == "--backoff") {
      if (const char *V = Next())
        Opts.Serve.RespawnBackoffSeconds = std::atof(V);
    } else if (Arg == "--degrade-grace") {
      if (const char *V = Next())
        Opts.Serve.DegradeGraceSeconds = std::atof(V);
    } else if (Arg == "--worker-crash-at") {
      if (const char *V = Next())
        WorkerCrashAt = V;
    } else if (Arg == "--die-on-task") {
      if (const char *V = Next())
        DieOnTask = std::atol(V);
    } else if (Arg == "--worker-die-immediately") {
      WorkerDieImmediately = true;
    } else if (Arg == "--heartbeat") {
      if (const char *V = Next())
        Heartbeat = std::atof(V);
    } else if (Arg == "--max-heartbeats") {
      if (const char *V = Next())
        MaxHeartbeats = std::atoi(V);
    } else {
      std::fprintf(stderr, "search_crash_victim: unknown option %s\n",
                   Arg.c_str());
      return 2;
    }
  }

  // Under RLIMIT_FSIZE (the disk-full torture) an over-limit write must
  // return EFBIG for RecordLog's partial-write amputation to run, not kill
  // the process with SIGXFSZ.
  std::signal(SIGXFSZ, SIG_IGN);

  // Graceful SIGTERM/SIGINT: raise the cooperative flag, flush, report
  // partial results, exit 0 (the graceful-shutdown torture asserts this).
  support::installShutdownFlag();
  Opts.StopFlag = support::shutdownFlag();

  auto LP = lang::parseLocusProgram(workloads::dgemmLocusFig5());
  if (!LP.ok()) {
    std::fprintf(stderr, "locus parse failed: %s\n", LP.message().c_str());
    return 1;
  }
  auto CP = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
  if (!CP.ok()) {
    std::fprintf(stderr, "C parse failed: %s\n", CP.message().c_str());
    return 1;
  }

  driver::Orchestrator Orch(**LP, **CP, Opts);

  if (Worker) {
    if (WorkerDieImmediately)
      ::raise(SIGKILL);
    service::WorkerOptions WOpts;
    WOpts.QueueDir = QueueDir;
    WOpts.WorkerId = WorkerId;
    WOpts.HeartbeatSeconds = Heartbeat;
    WOpts.MaxHeartbeatsPerTask = MaxHeartbeats;
    WOpts.StopFlag = Opts.StopFlag;
    if (DieOnTask > 0)
      WOpts.OnClaim = [DieOnTask](uint64_t Id) {
        if (Id == static_cast<uint64_t>(DieOnTask))
          ::raise(SIGKILL); // poison task: die holding the lease
      };
    auto WR = Orch.runWorker(WOpts);
    if (!WR.ok()) {
      std::fprintf(stderr, "worker failed: %s\n", WR.message().c_str());
      return 1;
    }
    std::printf("WORKER tasks=%llu claims_lost=%llu heartbeats=%llu\n",
                (unsigned long long)WR->TasksEvaluated,
                (unsigned long long)WR->ClaimsLost,
                (unsigned long long)WR->Heartbeats);
    return 0;
  }

  if (Serve) {
    Opts.Serve.QueueDir = QueueDir;
    Opts.Serve.Workers = ServeWorkers;
    char ExeBuf[4096];
    ssize_t N = ::readlink("/proc/self/exe", ExeBuf, sizeof(ExeBuf) - 1);
    std::string Exe = N > 0 ? std::string(ExeBuf, static_cast<size_t>(N))
                            : std::string(argv[0]);
    std::vector<std::string> Base = {Exe, "--worker", "--queue-dir", QueueDir};
    if (!Opts.CacheDir.empty()) {
      Base.push_back("--cache-dir");
      Base.push_back(Opts.CacheDir);
    }
    if (DieOnTask > 0) {
      Base.push_back("--die-on-task");
      Base.push_back(std::to_string(DieOnTask));
    }
    if (WorkerDieImmediately)
      Base.push_back("--worker-die-immediately");
    std::string CrashAt = WorkerCrashAt;
    Opts.Serve.WorkerArgv = [Base, CrashAt](int Slot, int Attempt) {
      std::vector<std::string> Argv = Base;
      // A worker crash spec arms only slot 0's first incarnation, so the
      // respawn completes the run instead of crashing forever.
      if (!CrashAt.empty() && Slot == 0 && Attempt == 0) {
        Argv.push_back("--crash-at");
        Argv.push_back(CrashAt);
      }
      return Argv;
    };
    // Recreate the orchestrator: Opts.Serve changed after construction.
    driver::Orchestrator ServeOrch(**LP, **CP, Opts);
    auto R = ServeOrch.runSearch();
    if (!R.ok()) {
      std::fprintf(stderr, "%s\n", R.message().c_str());
      return 1;
    }
    std::string Best = driver::serializePoint(R->Search.Best);
    for (char &C : Best)
      if (C == '\n')
        C = ';';
    std::printf("BEST %s\n", Best.c_str());
    std::printf("METRIC %.17g\n", R->Search.BestMetric);
    std::printf("EVALS %d REPLAYED %d\n", R->Search.Evaluations,
                R->Search.ReplayedEvaluations);
    const service::ServiceStats &S = R->Service;
    std::printf("SERVICE submitted=%llu worker=%llu recovered=%llu "
                "local=%llu expiries=%llu stale=%llu deaths=%llu "
                "respawns=%llu quarantined=%llu spawned=%d degraded=%d\n",
                (unsigned long long)S.TasksSubmitted,
                (unsigned long long)S.WorkerResults,
                (unsigned long long)S.RecoveredResults,
                (unsigned long long)S.LocalFallbackEvals,
                (unsigned long long)S.LeaseExpiries,
                (unsigned long long)S.StaleResultsDiscarded,
                (unsigned long long)S.WorkerDeaths,
                (unsigned long long)S.WorkerRespawns,
                (unsigned long long)S.QuarantinedTasks, S.WorkersSpawned,
                S.Degraded ? 1 : 0);
    if (R->Search.Stopped)
      std::printf("INTERRUPTED %d\n", R->Search.Evaluations);
    return 0;
  }

  auto R = Orch.runSearch();
  if (!R.ok()) {
    std::fprintf(stderr, "%s\n", R.message().c_str());
    return 1;
  }

  // One line per fact, stable ordering, full double precision: the parent
  // diffs these strings byte for byte.
  std::string Best = driver::serializePoint(R->Search.Best);
  for (char &C : Best)
    if (C == '\n')
      C = ';';
  std::printf("BEST %s\n", Best.c_str());
  std::printf("METRIC %.17g\n", R->Search.BestMetric);
  std::printf("EVALS %d REPLAYED %d\n", R->Search.Evaluations,
              R->Search.ReplayedEvaluations);
  std::printf("CACHE loaded=%llu appended=%llu hits=%llu misses=%llu "
              "warnings=%llu degraded=%d\n",
              (unsigned long long)R->Search.CacheLoadedPersistent,
              (unsigned long long)R->Search.CachePersistedAppends,
              (unsigned long long)R->Search.CacheHits,
              (unsigned long long)R->Search.CacheMisses,
              (unsigned long long)R->Search.CacheWarnings,
              R->Search.CacheDegraded ? 1 : 0);
  if (R->Search.Stopped)
    std::printf("INTERRUPTED %d\n", R->Search.Evaluations);
  return 0;
}
