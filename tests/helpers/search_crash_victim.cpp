//===- search_crash_victim.cpp - Real search run for crash torture ------------===//
//
// A minimal orchestrator driver spawned by CrashTortureTest: runs the Fig. 5
// DGEMM search on the tiny machine with a journal (and optionally a
// persistent cache directory), printing a machine-parsable summary the
// parent compares across crashed/resumed/uninterrupted runs.
//
//   search_crash_victim --journal FILE [--resume] [--cache-dir DIR]
//                       [--cache-readonly] [--budget N] [--seed N]
//                       [--searcher NAME] [--crash-at SPEC]
//
// --crash-at SPEC arms the RecordLog crash injector (the SPEC lands in
// LOCUS_RECORDLOG_CRASH_AT before any log is opened): the Nth append
// SIGKILLs this process mid-write, the closest a test can get to yanking
// the power cord. The parent then re-runs with --resume and expects the
// same BEST/METRIC lines the uninterrupted run prints.
//
// Output on success (exit 0):
//   BEST <id=value;id=value;...>
//   METRIC <best metric, %.17g>
//   EVALS <fresh> REPLAYED <replayed>
//   CACHE loaded=<n> appended=<n> hits=<n> misses=<n> warnings=<n> degraded=<0|1>
// On failure: the orchestrator's error on stderr, exit 1.
//
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace locus;

int main(int argc, char **argv) {
  driver::OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 30;
  Opts.Seed = 5;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--journal") {
      if (const char *V = Next())
        Opts.JournalPath = V;
    } else if (Arg == "--resume") {
      Opts.ResumeFromJournal = true;
    } else if (Arg == "--cache-dir") {
      if (const char *V = Next())
        Opts.CacheDir = V;
    } else if (Arg == "--cache-readonly") {
      Opts.CacheReadOnly = true;
    } else if (Arg == "--budget") {
      if (const char *V = Next())
        Opts.MaxEvaluations = std::atoi(V);
    } else if (Arg == "--seed") {
      if (const char *V = Next())
        Opts.Seed = static_cast<uint64_t>(std::strtoull(V, nullptr, 10));
    } else if (Arg == "--searcher") {
      if (const char *V = Next())
        Opts.SearcherName = V;
    } else if (Arg == "--crash-at") {
      // Must be armed before the first RecordLog append in this process.
      if (const char *V = Next())
        ::setenv("LOCUS_RECORDLOG_CRASH_AT", V, 1);
    } else {
      std::fprintf(stderr, "search_crash_victim: unknown option %s\n",
                   Arg.c_str());
      return 2;
    }
  }

  // Under RLIMIT_FSIZE (the disk-full torture) an over-limit write must
  // return EFBIG for RecordLog's partial-write amputation to run, not kill
  // the process with SIGXFSZ.
  std::signal(SIGXFSZ, SIG_IGN);

  auto LP = lang::parseLocusProgram(workloads::dgemmLocusFig5());
  if (!LP.ok()) {
    std::fprintf(stderr, "locus parse failed: %s\n", LP.message().c_str());
    return 1;
  }
  auto CP = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
  if (!CP.ok()) {
    std::fprintf(stderr, "C parse failed: %s\n", CP.message().c_str());
    return 1;
  }

  driver::Orchestrator Orch(**LP, **CP, Opts);
  auto R = Orch.runSearch();
  if (!R.ok()) {
    std::fprintf(stderr, "%s\n", R.message().c_str());
    return 1;
  }

  // One line per fact, stable ordering, full double precision: the parent
  // diffs these strings byte for byte.
  std::string Best = driver::serializePoint(R->Search.Best);
  for (char &C : Best)
    if (C == '\n')
      C = ';';
  std::printf("BEST %s\n", Best.c_str());
  std::printf("METRIC %.17g\n", R->Search.BestMetric);
  std::printf("EVALS %d REPLAYED %d\n", R->Search.Evaluations,
              R->Search.ReplayedEvaluations);
  std::printf("CACHE loaded=%llu appended=%llu hits=%llu misses=%llu "
              "warnings=%llu degraded=%d\n",
              (unsigned long long)R->Search.CacheLoadedPersistent,
              (unsigned long long)R->Search.CachePersistedAppends,
              (unsigned long long)R->Search.CacheHits,
              (unsigned long long)R->Search.CacheMisses,
              (unsigned long long)R->Search.CacheWarnings,
              R->Search.CacheDegraded ? 1 : 0);
  return 0;
}
