//===- NativeEvaluatorTest.cpp - compile-and-run path tests -------------------===//

#include "src/cir/Parser.h"
#include "src/eval/Evaluator.h"
#include "src/eval/NativeEvaluator.h"
#include "src/transform/Tiling.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

namespace locus {
namespace {

bool pathExists(const std::string &Path) {
  struct stat St;
  return stat(Path.c_str(), &St) == 0;
}

/// Counts entries (excluding . and ..) in a directory.
int dirEntryCount(const std::string &Path) {
  DIR *D = opendir(Path.c_str());
  if (!D)
    return -1;
  int N = 0;
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name != "." && Name != "..")
      ++N;
  }
  closedir(D);
  return N;
}

TEST(NativeEvaluator, EmitsCompilableC) {
  auto P = cir::parseProgram(workloads::dgemmSource(16, 16, 16));
  ASSERT_TRUE(P.ok());
  std::string C = eval::emitNativeC(**P);
  EXPECT_NE(C.find("int main(void)"), std::string::npos);
  EXPECT_NE(C.find("LOCUS_CHECKSUM"), std::string::npos);
  // Region markers must not leak into the native source.
  EXPECT_EQ(C.find("@Locus"), std::string::npos);
}

TEST(NativeEvaluator, MatchesSimulatorChecksum) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
  ASSERT_TRUE(P.ok());

  eval::NativeResult Native = eval::evaluateNative(**P);
  ASSERT_TRUE(Native.Ok) << Native.Error;
  EXPECT_GT(Native.Seconds, 0);

  eval::EvalOptions SimOpts;
  SimOpts.CountCost = false;
  eval::RunResult Sim = eval::evaluateProgram(**P, SimOpts);
  ASSERT_TRUE(Sim.Ok);
  EXPECT_NEAR(Native.Checksum, Sim.Checksum,
              1e-6 * std::max(1.0, std::abs(Sim.Checksum)));
}

TEST(NativeEvaluator, TransformedVariantMatchesBaselineNatively) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(20, 20, 20));
  ASSERT_TRUE(P.ok());
  eval::NativeResult Base = eval::evaluateNative(**P);
  ASSERT_TRUE(Base.Ok) << Base.Error;

  auto Variant = (*P)->clone();
  transform::TransformContext Ctx;
  Ctx.Prog = Variant.get();
  transform::TilingArgs Args;
  Args.Factors = {4, 8, 4};
  ASSERT_TRUE(transform::applyTiling(*Variant->findRegions("matmul")[0], Args,
                                     Ctx)
                  .succeeded());
  eval::NativeResult Tiled = eval::evaluateNative(*Variant);
  ASSERT_TRUE(Tiled.Ok) << Tiled.Error;
  EXPECT_NEAR(Base.Checksum, Tiled.Checksum,
              1e-6 * std::max(1.0, std::abs(Base.Checksum)));
}

//===----------------------------------------------------------------------===//
// Strict harness-output parsing (no compiler needed)
//===----------------------------------------------------------------------===//

TEST(NativeParse, AcceptsCanonicalOutput) {
  double Secs = 0, Sum = 0;
  Status S = eval::parseNativeOutput(
      "LOCUS_TIME 0.001234567\nLOCUS_CHECKSUM 42.500000000\n", Secs, Sum);
  ASSERT_TRUE(S.ok()) << S.message();
  EXPECT_DOUBLE_EQ(Secs, 0.001234567);
  EXPECT_DOUBLE_EQ(Sum, 42.5);
}

TEST(NativeParse, AcceptsScientificAndNegativeChecksum) {
  double Secs = 0, Sum = 0;
  ASSERT_TRUE(
      eval::parseNativeOutput("LOCUS_TIME 1.5e-4\nLOCUS_CHECKSUM -3.25\n",
                              Secs, Sum)
          .ok());
  EXPECT_DOUBLE_EQ(Secs, 1.5e-4);
  EXPECT_DOUBLE_EQ(Sum, -3.25);
}

TEST(NativeParse, RejectsGarbage) {
  double Secs = 0, Sum = 0;
  // Anything a crashing or chatty variant might print must be rejected so
  // it classifies as MetricUnstable, never as a silently wrong metric.
  const char *Bad[] = {
      "",                                                   // empty
      "segmentation fault (not really): 0xdeadbeef\n",      // garbage
      "LOCUS_TIME 0.5\n",                                   // missing field
      "LOCUS_CHECKSUM 1.0\n",                               // missing field
      "LOCUS_TIME 0.5\nLOCUS_CHECKSUM 1.0\nextra line\n",   // trailing junk
      "noise\nLOCUS_TIME 0.5\nLOCUS_CHECKSUM 1.0\n",        // leading junk
      "LOCUS_TIME 0.5\nLOCUS_TIME 0.6\nLOCUS_CHECKSUM 1\n", // duplicate
      "LOCUS_TIME 0.5abc\nLOCUS_CHECKSUM 1.0\n",            // partial token
      "LOCUS_TIME abc\nLOCUS_CHECKSUM 1.0\n",               // non-numeric
      "LOCUS_TIME -0.5\nLOCUS_CHECKSUM 1.0\n",              // negative time
      "LOCUS_TIME inf\nLOCUS_CHECKSUM 1.0\n",               // non-finite
      "LOCUS_TIME nan\nLOCUS_CHECKSUM 1.0\n",               // non-finite
      "LOCUS_TIME 0.5\nLOCUS_CHECKSUM nan\n",               // non-finite sum
      "LOCUS_TIME\nLOCUS_CHECKSUM 1.0\n",                   // missing value
  };
  for (const char *Output : Bad)
    EXPECT_FALSE(eval::parseNativeOutput(Output, Secs, Sum).ok())
        << "accepted: " << Output;
}

TEST(NativeParse, MissingCompilerIsDetected) {
  EXPECT_FALSE(
      eval::nativeCompilerAvailable("definitely-not-a-compiler-zzz"));
}

//===----------------------------------------------------------------------===//
// Sandboxed native evaluation (gated on a system compiler)
//===----------------------------------------------------------------------===//

TEST(NativeSandbox, HermeticWorkdirsAreCleanedUp) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(12, 12, 12));
  ASSERT_TRUE(P.ok());

  support::TempDir Base("locus-native-test-");
  ASSERT_TRUE(Base.valid());
  eval::NativeOptions Opts;
  Opts.WorkDir = Base.path();
  Opts.Repeats = 1;
  eval::NativeResult R = eval::evaluateNative(**P, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.WorkDir.empty());
  // Every per-evaluation mkdtemp directory under the base is gone.
  EXPECT_EQ(dirEntryCount(Base.path()), 0);
}

TEST(NativeSandbox, KeepWorkDirRetainsSources) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(12, 12, 12));
  ASSERT_TRUE(P.ok());

  support::TempDir Base("locus-native-test-");
  ASSERT_TRUE(Base.valid());
  eval::NativeOptions Opts;
  Opts.WorkDir = Base.path();
  Opts.Repeats = 1;
  Opts.KeepWorkDir = true;
  eval::NativeResult R = eval::evaluateNative(**P, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_FALSE(R.WorkDir.empty());
  EXPECT_TRUE(pathExists(R.WorkDir + "/variant.c"));
  // Base's destructor removes the retained tree with the rest.
}

TEST(NativeSandbox, CompileFailureCapturesCompilerStderr) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(8, 8, 8));
  ASSERT_TRUE(P.ok());

  support::TempDir Base("locus-native-test-");
  ASSERT_TRUE(Base.valid());
  eval::NativeOptions Opts;
  Opts.WorkDir = Base.path();
  Opts.Flags = {"-O2", "-fthis-flag-does-not-exist"};
  eval::NativeResult R = eval::evaluateNative(**P, Opts);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Failure, search::FailureKind::PrepareFailed);
  EXPECT_NE(R.Error.find("fthis-flag-does-not-exist"), std::string::npos)
      << R.Error;
  // The failed evaluation's workdir is cleaned up too.
  EXPECT_EQ(dirEntryCount(Base.path()), 0);
}

TEST(NativeSandbox, RunDeadlineClassifiesBudgetExceeded) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  // An unoptimized large dgemm cannot finish in 10ms: the sandbox watchdog
  // must kill it and the evaluator must classify the loss as BudgetExceeded.
  auto P = cir::parseProgram(workloads::dgemmSource(400, 400, 400));
  ASSERT_TRUE(P.ok());

  support::TempDir Base("locus-native-test-");
  ASSERT_TRUE(Base.valid());
  eval::NativeOptions Opts;
  Opts.WorkDir = Base.path();
  Opts.Flags = {"-O0"};
  Opts.Repeats = 1;
  Opts.RunTimeoutSeconds = 0.01;
  eval::NativeResult R = eval::evaluateNative(**P, Opts);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Failure, search::FailureKind::BudgetExceeded) << R.Error;
  EXPECT_EQ(dirEntryCount(Base.path()), 0);
}

TEST(NativeSandbox, OutcomeMapping) {
  eval::NativeResult Ok;
  Ok.Ok = true;
  Ok.Seconds = 0.5;
  search::EvalOutcome O = eval::toEvalOutcome(Ok);
  EXPECT_TRUE(O.ok());
  EXPECT_DOUBLE_EQ(O.Metric, 0.5);

  eval::NativeResult Bad;
  Bad.Failure = search::FailureKind::RuntimeTrap;
  Bad.Error = "variant killed by SIGSEGV";
  O = eval::toEvalOutcome(Bad);
  EXPECT_FALSE(O.ok());
  EXPECT_EQ(O.Failure, search::FailureKind::RuntimeTrap);
  EXPECT_EQ(O.Detail, "variant killed by SIGSEGV");
}

//===----------------------------------------------------------------------===//
// Deterministic retry-with-backoff for MetricUnstable measurements
//===----------------------------------------------------------------------===//

TEST(NativeRetry, BackoffIsAPureFunctionOfSeedAndAttempt) {
  // Same (seed, attempt) -> same delay, on every call and in any order:
  // this is what makes --jobs N retry schedules identical to --jobs 1.
  for (int Attempt : {0, 1, 2, 5}) {
    double D = eval::nativeBackoffSeconds(1234, Attempt, 0.05, 10.0);
    EXPECT_DOUBLE_EQ(D, eval::nativeBackoffSeconds(1234, Attempt, 0.05, 10.0));
    EXPECT_GT(D, 0);
  }
  // Different seeds jitter differently (with overwhelming probability for
  // these two fixed seeds).
  EXPECT_NE(eval::nativeBackoffSeconds(1, 3, 0.05, 10.0),
            eval::nativeBackoffSeconds(2, 3, 0.05, 10.0));
}

TEST(NativeRetry, BackoffGrowsExponentiallyAndRespectsCap) {
  // Jitter is bounded in [0.5, 1.0], so attempt K+2 (4x base) always
  // exceeds attempt K (1x base) despite jitter.
  double D0 = eval::nativeBackoffSeconds(7, 0, 0.1, 1e9);
  double D2 = eval::nativeBackoffSeconds(7, 2, 0.1, 1e9);
  EXPECT_GT(D2, D0);
  EXPECT_GE(D0, 0.05);
  EXPECT_LE(D0, 0.1);
  // The cap bounds every delay.
  for (int Attempt = 0; Attempt < 30; ++Attempt)
    EXPECT_LE(eval::nativeBackoffSeconds(7, Attempt, 0.1, 0.75), 0.75);
  // Disabled base means no sleep.
  EXPECT_DOUBLE_EQ(eval::nativeBackoffSeconds(7, 3, 0.0, 1.0), 0.0);
}

TEST(NativeRetry, RetriesOnlyMetricUnstable) {
  using search::FailureKind;
  auto Unstable = [] {
    eval::NativeResult R;
    R.Failure = FailureKind::MetricUnstable;
    R.Error = "checksum varies";
    return R;
  };
  auto Good = [] {
    eval::NativeResult R;
    R.Ok = true;
    R.Seconds = 0.25;
    return R;
  };

  // Unstable twice, then clean: succeeds after two retries, sleeping the
  // deterministic schedule.
  int Calls = 0;
  std::vector<double> Sleeps;
  eval::NativeResult R = eval::retryUnstable(
      [&](int Attempt) {
        EXPECT_EQ(Attempt, Calls);
        ++Calls;
        return Calls <= 2 ? Unstable() : Good();
      },
      [&](double S) { Sleeps.push_back(S); }, 42, 3, 0.05, 1.0);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(Calls, 3);
  ASSERT_EQ(Sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(Sleeps[0], eval::nativeBackoffSeconds(42, 0, 0.05, 1.0));
  EXPECT_DOUBLE_EQ(Sleeps[1], eval::nativeBackoffSeconds(42, 1, 0.05, 1.0));

  // Persistent instability: capped attempts, annotated error.
  Calls = 0;
  R = eval::retryUnstable([&](int) { ++Calls; return Unstable(); },
                          nullptr, 42, 2, 0.0, 0.0);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(Calls, 3); // 1 initial + 2 retries
  EXPECT_NE(R.Error.find("2 backoff retries"), std::string::npos) << R.Error;

  // A hard failure is returned immediately, never retried.
  Calls = 0;
  R = eval::retryUnstable(
      [&](int) {
        ++Calls;
        eval::NativeResult N;
        N.Failure = FailureKind::RuntimeTrap;
        N.Error = "SIGSEGV";
        return N;
      },
      nullptr, 42, 5, 0.0, 0.0);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(R.Failure, FailureKind::RuntimeTrap);
  EXPECT_EQ(R.Error, "SIGSEGV");

  // MaxRetries == 0 disables retrying entirely.
  Calls = 0;
  R = eval::retryUnstable([&](int) { ++Calls; return Unstable(); },
                          nullptr, 42, 0, 0.0, 0.0);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(R.Failure, FailureKind::MetricUnstable);
}

} // namespace
} // namespace locus
