//===- NativeEvaluatorTest.cpp - compile-and-run path tests -------------------===//

#include "src/cir/Parser.h"
#include "src/eval/Evaluator.h"
#include "src/eval/NativeEvaluator.h"
#include "src/transform/Tiling.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

TEST(NativeEvaluator, EmitsCompilableC) {
  auto P = cir::parseProgram(workloads::dgemmSource(16, 16, 16));
  ASSERT_TRUE(P.ok());
  std::string C = eval::emitNativeC(**P);
  EXPECT_NE(C.find("int main(void)"), std::string::npos);
  EXPECT_NE(C.find("LOCUS_CHECKSUM"), std::string::npos);
  // Region markers must not leak into the native source.
  EXPECT_EQ(C.find("@Locus"), std::string::npos);
}

TEST(NativeEvaluator, MatchesSimulatorChecksum) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
  ASSERT_TRUE(P.ok());

  eval::NativeResult Native = eval::evaluateNative(**P);
  ASSERT_TRUE(Native.Ok) << Native.Error;
  EXPECT_GT(Native.Seconds, 0);

  eval::EvalOptions SimOpts;
  SimOpts.CountCost = false;
  eval::RunResult Sim = eval::evaluateProgram(**P, SimOpts);
  ASSERT_TRUE(Sim.Ok);
  EXPECT_NEAR(Native.Checksum, Sim.Checksum,
              1e-6 * std::max(1.0, std::abs(Sim.Checksum)));
}

TEST(NativeEvaluator, TransformedVariantMatchesBaselineNatively) {
  if (!eval::nativeCompilerAvailable("cc"))
    GTEST_SKIP() << "no system C compiler";
  auto P = cir::parseProgram(workloads::dgemmSource(20, 20, 20));
  ASSERT_TRUE(P.ok());
  eval::NativeResult Base = eval::evaluateNative(**P);
  ASSERT_TRUE(Base.Ok) << Base.Error;

  auto Variant = (*P)->clone();
  transform::TransformContext Ctx;
  Ctx.Prog = Variant.get();
  transform::TilingArgs Args;
  Args.Factors = {4, 8, 4};
  ASSERT_TRUE(transform::applyTiling(*Variant->findRegions("matmul")[0], Args,
                                     Ctx)
                  .succeeded());
  eval::NativeResult Tiled = eval::evaluateNative(*Variant);
  ASSERT_TRUE(Tiled.Ok) << Tiled.Error;
  EXPECT_NEAR(Base.Checksum, Tiled.Checksum,
              1e-6 * std::max(1.0, std::abs(Base.Checksum)));
}

} // namespace
} // namespace locus
