//===- StaticPruneTest.cpp - Static legality oracle end-to-end tests ----------===//
///
/// \file
/// Exercises the pre-evaluation pruning pipeline: plan extraction during
/// extractSpace, LegalityOracle classification inside the search loop, and
/// the invariant the oracle must uphold — pruning changes how much a search
/// costs, never what it finds.
///
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using driver::Orchestrator;
using driver::OrchestratorOptions;

std::unique_ptr<lang::LocusProgram> parseLocusOrDie(const std::string &Src) {
  auto P = lang::parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::unique_ptr<cir::Program> parseCOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

OrchestratorOptions tinyOptions() {
  OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 30;
  Opts.Seed = 5;
  return Opts;
}

driver::SearchWorkflowResult runFig7(bool StaticPrune) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig7(16));
  auto CP = parseCOrDie(workloads::dgemmSource(32, 32, 32));
  OrchestratorOptions Opts = tinyOptions();
  Opts.MaxEvaluations = 40;
  Opts.StaticPrune = StaticPrune;
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(*R);
}

/// The Fig. 7 program has dependent ranges (tileI_2 = poweroftwo(2..tileI))
/// whose static extremes exceed the dependent bound for most outer values,
/// so the samplers regularly propose provably-invalid points. The oracle
/// must prune some of them — and must not change the search trajectory.
TEST(StaticPrune, Fig7PrunesWithoutChangingTheOutcome) {
  driver::SearchWorkflowResult On = runFig7(true);
  driver::SearchWorkflowResult Off = runFig7(false);

  // The prune actually fired, and only when enabled.
  EXPECT_GT(On.Search.PrunedStatic, 0);
  EXPECT_EQ(Off.Search.PrunedStatic, 0);

  // Objective invocations strictly decrease: every evaluation in the Off
  // run invoked the evaluator; in the On run PrunedStatic of them did not.
  EXPECT_LT(On.Search.Evaluations - On.Search.PrunedStatic,
            Off.Search.Evaluations);

  // Identical trajectory: same budget consumed, same per-step outcomes,
  // same winner. A pruned point flows through the searcher exactly like an
  // evaluated failure.
  EXPECT_EQ(On.Search.Evaluations, Off.Search.Evaluations);
  EXPECT_EQ(On.Search.InvalidPoints, Off.Search.InvalidPoints);
  ASSERT_EQ(On.Search.History.size(), Off.Search.History.size());
  for (size_t I = 0; I < On.Search.History.size(); ++I) {
    EXPECT_EQ(On.Search.History[I].P.key(), Off.Search.History[I].P.key())
        << "trajectory diverged at step " << I;
    EXPECT_EQ(On.Search.History[I].Valid, Off.Search.History[I].Valid);
    if (On.Search.History[I].Valid) {
      EXPECT_DOUBLE_EQ(On.Search.History[I].Metric,
                       Off.Search.History[I].Metric);
    }
  }
  EXPECT_EQ(driver::serializePoint(On.Search.Best),
            driver::serializePoint(Off.Search.Best));
  EXPECT_DOUBLE_EQ(On.Search.BestMetric, Off.Search.BestMetric);
}

/// A permutation parameter fed to Interchange over a loop nest with a (<,>)
/// dependence: the swapped order is illegal, and the oracle proves it by
/// replaying the module call on a private copy of the region — no variant
/// is materialized, no evaluator runs.
TEST(StaticPrune, ReplayPrunesIllegalInterchange) {
  auto CP = parseCOrDie(R"(
double A[64][64];
int main() {
  int i, j;
#pragma @Locus loop=nest
  for (i = 1; i < 64; i++)
    for (j = 0; j < 63; j++)
      A[i][j] = A[i-1][j+1] + 1.0;
}
)");
  auto LP = parseLocusOrDie(R"(
Search {
  buildcmd = "make";
  runcmd = "./nest";
}

CodeReg nest {
  order = permutation([0, 1]);
  RoseLocus.Interchange(order=order);
}
)");
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "exhaustive";
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();

  // Two points exist: identity (legal, NoOp) and the swap (illegal).
  EXPECT_EQ(R->Search.Evaluations, 2);
  EXPECT_EQ(R->Search.PrunedStatic, 1);
  EXPECT_EQ(R->Search.failures(search::FailureKind::TransformIllegal), 1);
  EXPECT_TRUE(R->Search.Found);

  // The pruned record carries the module's located illegality diagnostic.
  bool SawDetail = false;
  for (const auto &Rec : R->Search.History)
    if (!Rec.Valid &&
        Rec.Detail.find("interchange violates a dependence") !=
            std::string::npos)
      SawDetail = true;
  EXPECT_TRUE(SawDetail);
}

/// Dependent integer ranges prune without any module replay: a point with
/// tf > tile violates "tf = poweroftwo(2..tile)" and is rejected from the
/// recorded range check alone.
TEST(StaticPrune, DependentRangeViolationsPruneWithoutReplay) {
  auto CP = parseCOrDie(workloads::dgemmSource(16, 16, 16));
  auto LP = parseLocusOrDie(R"(
Search {
  buildcmd = "make";
  runcmd = "./matmul";
}

CodeReg matmul {
  tile = poweroftwo(2..8);
  tf = poweroftwo(2..tile);
  RoseLocus.Tiling(loop="0", factor=tile);
}
)");
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "exhaustive";
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();

  // Space is tile in {2,4,8} x tf in {2,4,8}: exactly three combinations
  // violate tf <= tile (tf=4>2, tf=8>2, tf=8>4), all provable statically.
  EXPECT_EQ(R->Search.PrunedStatic, 3);
  EXPECT_EQ(R->Search.failures(search::FailureKind::InvalidPoint), 3);
  EXPECT_TRUE(R->Search.Found);
}

} // namespace
} // namespace locus
