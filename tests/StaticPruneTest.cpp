//===- StaticPruneTest.cpp - Static legality oracle end-to-end tests ----------===//
///
/// \file
/// Exercises the pre-evaluation pruning pipeline: plan extraction during
/// extractSpace, LegalityOracle classification inside the search loop, and
/// the invariant the oracle must uphold — pruning changes how much a search
/// costs, never what it finds.
///
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using driver::Orchestrator;
using driver::OrchestratorOptions;

std::unique_ptr<lang::LocusProgram> parseLocusOrDie(const std::string &Src) {
  auto P = lang::parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::unique_ptr<cir::Program> parseCOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

OrchestratorOptions tinyOptions() {
  OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 30;
  Opts.Seed = 5;
  return Opts;
}

driver::SearchWorkflowResult runFig7(bool StaticPrune) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig7(16));
  auto CP = parseCOrDie(workloads::dgemmSource(32, 32, 32));
  OrchestratorOptions Opts = tinyOptions();
  Opts.MaxEvaluations = 40;
  Opts.StaticPrune = StaticPrune;
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(*R);
}

/// The Fig. 7 program has dependent ranges (tileI_2 = poweroftwo(2..tileI))
/// whose static extremes exceed the dependent bound for most outer values,
/// so the samplers regularly propose provably-invalid points. The oracle
/// must prune some of them — and must not change the search trajectory.
TEST(StaticPrune, Fig7PrunesWithoutChangingTheOutcome) {
  driver::SearchWorkflowResult On = runFig7(true);
  driver::SearchWorkflowResult Off = runFig7(false);

  // The prune actually fired, and only when enabled.
  EXPECT_GT(On.Search.PrunedStatic, 0);
  EXPECT_EQ(Off.Search.PrunedStatic, 0);

  // Objective invocations strictly decrease: every evaluation in the Off
  // run invoked the evaluator; in the On run PrunedStatic of them did not.
  EXPECT_LT(On.Search.Evaluations - On.Search.PrunedStatic,
            Off.Search.Evaluations);

  // Identical trajectory: same budget consumed, same per-step outcomes,
  // same winner. A pruned point flows through the searcher exactly like an
  // evaluated failure.
  EXPECT_EQ(On.Search.Evaluations, Off.Search.Evaluations);
  EXPECT_EQ(On.Search.InvalidPoints, Off.Search.InvalidPoints);
  ASSERT_EQ(On.Search.History.size(), Off.Search.History.size());
  for (size_t I = 0; I < On.Search.History.size(); ++I) {
    EXPECT_EQ(On.Search.History[I].P.key(), Off.Search.History[I].P.key())
        << "trajectory diverged at step " << I;
    EXPECT_EQ(On.Search.History[I].Valid, Off.Search.History[I].Valid);
    if (On.Search.History[I].Valid) {
      EXPECT_DOUBLE_EQ(On.Search.History[I].Metric,
                       Off.Search.History[I].Metric);
    }
  }
  EXPECT_EQ(driver::serializePoint(On.Search.Best),
            driver::serializePoint(Off.Search.Best));
  EXPECT_DOUBLE_EQ(On.Search.BestMetric, Off.Search.BestMetric);
}

/// A permutation parameter fed to Interchange over a loop nest with a (<,>)
/// dependence: the swapped order is illegal, and the oracle proves it by
/// replaying the module call on a private copy of the region — no variant
/// is materialized, no evaluator runs.
TEST(StaticPrune, ReplayPrunesIllegalInterchange) {
  auto CP = parseCOrDie(R"(
double A[64][64];
int main() {
  int i, j;
#pragma @Locus loop=nest
  for (i = 1; i < 64; i++)
    for (j = 0; j < 63; j++)
      A[i][j] = A[i-1][j+1] + 1.0;
}
)");
  auto LP = parseLocusOrDie(R"(
Search {
  buildcmd = "make";
  runcmd = "./nest";
}

CodeReg nest {
  order = permutation([0, 1]);
  RoseLocus.Interchange(order=order);
}
)");
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "exhaustive";
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();

  // Two points exist: identity (legal, NoOp) and the swap (illegal).
  EXPECT_EQ(R->Search.Evaluations, 2);
  EXPECT_EQ(R->Search.PrunedStatic, 1);
  EXPECT_EQ(R->Search.failures(search::FailureKind::TransformIllegal), 1);
  EXPECT_TRUE(R->Search.Found);

  // The pruned record carries the module's located illegality diagnostic.
  bool SawDetail = false;
  for (const auto &Rec : R->Search.History)
    if (!Rec.Valid &&
        Rec.Detail.find("interchange violates a dependence") !=
            std::string::npos)
      SawDetail = true;
  EXPECT_TRUE(SawDetail);
}

/// Dependent integer ranges prune without any module replay: a point with
/// tf > tile violates "tf = poweroftwo(2..tile)" and is rejected from the
/// recorded range check alone.
TEST(StaticPrune, DependentRangeViolationsPruneWithoutReplay) {
  auto CP = parseCOrDie(workloads::dgemmSource(16, 16, 16));
  auto LP = parseLocusOrDie(R"(
Search {
  buildcmd = "make";
  runcmd = "./matmul";
}

CodeReg matmul {
  tile = poweroftwo(2..8);
  tf = poweroftwo(2..tile);
  RoseLocus.Tiling(loop="0", factor=tile);
}
)");
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "exhaustive";
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();

  // Space is tile in {2,4,8} x tf in {2,4,8}: exactly three combinations
  // violate tf <= tile (tf=4>2, tf=8>2, tf=8>4), all provable statically.
  EXPECT_EQ(R->Search.PrunedStatic, 3);
  EXPECT_EQ(R->Search.failures(search::FailureKind::InvalidPoint), 3);
  EXPECT_TRUE(R->Search.Found);
}

//===----------------------------------------------------------------------===//
// Racy parallelizations prune statically
//===----------------------------------------------------------------------===//

/// Region with one provably-safe loop ("0") and one provably-racy loop
/// ("1", an in-place prefix scan).
const char *TwoLoopSrc = R"(
#define N 48
double A[N];
double B[N];
double V[N];
int main() {
  int i, j;
#pragma @Locus block=pair
  for (i = 0; i < N; i++)
    B[i] = A[i] * 2.0 + 1.0;
  for (j = 1; j < N; j++)
    V[j] = V[j - 1] + B[j];
#pragma @Locus endblock
}
)";

std::string ompForChoice(const std::string &Loops) {
  return std::string(R"(
Search {
  buildcmd = "make";
  runcmd = "./pair";
}

CodeReg pair {
  which = enum()") +
         Loops + R"();
  Pragma.OMPFor(loop=which);
}
)";
}

/// The race detector feeds the legality oracle: a point that parallelizes
/// the racy loop is classified PrunedStatic and never reaches the
/// evaluator, and the search lands on the exact same best point as a
/// search over the hand-pruned space (racy choice deleted by hand).
TEST(StaticPrune, RacyParallelizationIsPrunedNotEvaluated) {
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "exhaustive";

  auto CP1 = parseCOrDie(TwoLoopSrc);
  auto LP1 = parseLocusOrDie(ompForChoice("\"0\", \"1\""));
  Orchestrator Full(*LP1, *CP1, Opts);
  auto RFull = Full.runSearch();
  ASSERT_TRUE(RFull.ok()) << RFull.message();

  // Two points; exactly the racy one is pruned, before evaluation.
  EXPECT_EQ(RFull->Search.Evaluations, 2);
  EXPECT_EQ(RFull->Search.PrunedStatic, 1);
  EXPECT_EQ(RFull->Search.failures(search::FailureKind::TransformIllegal), 1);
  EXPECT_TRUE(RFull->Search.Found);

  // The pruned record carries the race witness.
  bool SawWitness = false;
  for (const auto &Rec : RFull->Search.History)
    if (!Rec.Valid && Rec.Detail.find("racy") != std::string::npos &&
        Rec.Detail.find("'V'") != std::string::npos)
      SawWitness = true;
  EXPECT_TRUE(SawWitness);

  // Hand-pruned space: the racy choice removed from the enum. Identical
  // best point, identical best metric.
  auto CP2 = parseCOrDie(TwoLoopSrc);
  auto LP2 = parseLocusOrDie(ompForChoice("\"0\""));
  Orchestrator Hand(*LP2, *CP2, Opts);
  auto RHand = Hand.runSearch();
  ASSERT_TRUE(RHand.ok()) << RHand.message();
  EXPECT_EQ(RHand->Search.Evaluations, 1);
  EXPECT_EQ(RHand->Search.PrunedStatic, 0);
  EXPECT_EQ(driver::serializePoint(RFull->Search.Best),
            driver::serializePoint(RHand->Search.Best));
  EXPECT_DOUBLE_EQ(RFull->Search.BestMetric, RHand->Search.BestMetric);
}

/// Disabling the oracle must not change what the search finds: the racy
/// point then reaches variant materialization, where the applyOmpFor gate
/// rejects it as an evaluated failure — same trajectory, same winner.
TEST(StaticPrune, RacePruneDoesNotChangeTheTrajectory) {
  auto run = [&](bool StaticPrune) {
    auto CP = parseCOrDie(TwoLoopSrc);
    auto LP = parseLocusOrDie(ompForChoice("\"0\", \"1\""));
    OrchestratorOptions Opts = tinyOptions();
    Opts.SearcherName = "exhaustive";
    Opts.StaticPrune = StaticPrune;
    Orchestrator Orch(*LP, *CP, Opts);
    auto R = Orch.runSearch();
    EXPECT_TRUE(R.ok()) << R.message();
    return std::move(*R);
  };
  driver::SearchWorkflowResult On = run(true);
  driver::SearchWorkflowResult Off = run(false);
  EXPECT_EQ(On.Search.PrunedStatic, 1);
  EXPECT_EQ(Off.Search.PrunedStatic, 0);
  EXPECT_EQ(On.Search.Evaluations, Off.Search.Evaluations);
  ASSERT_EQ(On.Search.History.size(), Off.Search.History.size());
  for (size_t I = 0; I < On.Search.History.size(); ++I) {
    EXPECT_EQ(On.Search.History[I].P.key(), Off.Search.History[I].P.key());
    EXPECT_EQ(On.Search.History[I].Valid, Off.Search.History[I].Valid);
  }
  EXPECT_EQ(driver::serializePoint(On.Search.Best),
            driver::serializePoint(Off.Search.Best));
  EXPECT_DOUBLE_EQ(On.Search.BestMetric, Off.Search.BestMetric);
}

/// TrustParallel threads end to end: with the override the racy point is
/// materialized (simulator still executes it sequentially, so the search
/// simply sees a second valid-but-unimproved variant).
TEST(StaticPrune, TrustParallelDisablesTheRaceGate) {
  auto CP = parseCOrDie(TwoLoopSrc);
  auto LP = parseLocusOrDie(ompForChoice("\"0\", \"1\""));
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = "exhaustive";
  Opts.TrustParallel = true;
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->Search.Evaluations, 2);
  EXPECT_EQ(R->Search.PrunedStatic, 0);
  EXPECT_EQ(R->Search.failures(search::FailureKind::TransformIllegal), 0);
  EXPECT_TRUE(R->Search.Found);
}

} // namespace
} // namespace locus
