//===- PropertyTest.cpp - Parameterized and randomized property tests ---------===//
//
// Property: every transformation sequence the modules accept must preserve
// program semantics (array contents modulo floating-point reassociation).
// Sweeps cover the parameter grids; the randomized composer stacks random
// transformations and validates the survivors.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Verifier.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"
#include "src/eval/Evaluator.h"
#include "src/support/Rng.h"
#include "src/transform/AltdescPragmas.h"
#include "src/transform/FusionDistribution.h"
#include "src/transform/GenericTiling.h"
#include "src/transform/Interchange.h"
#include "src/transform/LicmScalarRepl.h"
#include "src/transform/Tiling.h"
#include "src/transform/Unroll.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace cir;
using namespace transform;

std::unique_ptr<Program> parseOrDie(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::vector<double> runArrays(const Program &P, bool &Ok) {
  eval::EvalOptions Opts;
  Opts.CountCost = false;
  eval::ProgramEvaluator E(P, Opts);
  Ok = false;
  if (!E.prepare().ok())
    return {};
  eval::RunResult R = E.run();
  if (!R.Ok)
    return {};
  Ok = true;
  std::vector<double> All;
  for (const auto &G : P.Globals) {
    if (G->Elem != ElemType::Double || !G->isArray())
      continue;
    auto A = E.doubleArray(G->Name);
    if (A.ok())
      All.insert(All.end(), A->begin(), A->end());
  }
  return All;
}

void expectEquivalent(const Program &Base, const Program &Variant,
                      const std::string &Context) {
  bool OkA = false, OkB = false;
  std::vector<double> A = runArrays(Base, OkA);
  std::vector<double> B = runArrays(Variant, OkB);
  ASSERT_TRUE(OkA) << Context;
  ASSERT_TRUE(OkB) << Context << "\n" << printProgram(Variant);
  ASSERT_EQ(A.size(), B.size()) << Context;
  for (size_t I = 0; I < A.size(); ++I) {
    double Tol = 1e-8 * std::max({1.0, std::abs(A[I]), std::abs(B[I])});
    ASSERT_NEAR(A[I], B[I], Tol)
        << Context << " at " << I << "\n"
        << printProgram(Variant);
  }
}

const char *MatmulOdd = R"(
#define M 11
#define N 13
#define K 7
double A[M][K];
double B[K][N];
double C[M][N];
int main() {
  int i, j, k;
#pragma @Locus loop=matmul
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < K; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
)";

//===----------------------------------------------------------------------===//
// Parameter sweeps
//===----------------------------------------------------------------------===//

class TilingSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TilingSweep, PreservesSemantics) {
  auto [TI, TJ, TK] = GetParam();
  auto Base = parseOrDie(MatmulOdd);
  auto Variant = Base->clone();
  TransformContext Ctx;
  Ctx.Prog = Variant.get();
  TilingArgs Args;
  Args.Factors = {static_cast<int64_t>(TI), static_cast<int64_t>(TJ),
                  static_cast<int64_t>(TK)};
  TransformResult R =
      applyTiling(*Variant->findRegions("matmul")[0], Args, Ctx);
  ASSERT_TRUE(R.applied()) << R.Message;
  expectEquivalent(*Base, *Variant, "tiling sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Factors, TilingSweep,
    ::testing::Values(std::make_tuple(2, 2, 2), std::make_tuple(3, 5, 7),
                      std::make_tuple(4, 1, 2), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 1, 3), std::make_tuple(5, 4, 3),
                      std::make_tuple(11, 13, 7), std::make_tuple(2, 8, 1)));

class UnrollSweep : public ::testing::TestWithParam<std::tuple<const char *, int>> {};

TEST_P(UnrollSweep, PreservesSemantics) {
  auto [Path, Factor] = GetParam();
  auto Base = parseOrDie(MatmulOdd);
  auto Variant = Base->clone();
  TransformContext Ctx;
  Ctx.Prog = Variant.get();
  UnrollArgs Args;
  Args.LoopPath = Path;
  Args.Factor = Factor;
  TransformResult R =
      applyUnroll(*Variant->findRegions("matmul")[0], Args, Ctx);
  ASSERT_TRUE(R.applied()) << R.Message;
  expectEquivalent(*Base, *Variant, "unroll sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Factors, UnrollSweep,
    ::testing::Values(std::make_tuple("0", 2), std::make_tuple("0", 3),
                      std::make_tuple("0.0", 4), std::make_tuple("0.0", 13),
                      std::make_tuple("0.0.0", 2), std::make_tuple("0.0.0", 5),
                      std::make_tuple("0.0.0", 7), std::make_tuple("0.0.0", 9)));

class UajSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UajSweep, PreservesSemantics) {
  auto [Depth, Factor] = GetParam();
  auto Base = parseOrDie(MatmulOdd);
  auto Variant = Base->clone();
  TransformContext Ctx;
  Ctx.Prog = Variant.get();
  UnrollAndJamArgs Args;
  Args.Depth = Depth;
  Args.Factor = Factor;
  TransformResult R =
      applyUnrollAndJam(*Variant->findRegions("matmul")[0], Args, Ctx);
  ASSERT_TRUE(R.applied()) << R.Message;
  expectEquivalent(*Base, *Variant, "unroll-and-jam sweep");
}

INSTANTIATE_TEST_SUITE_P(DepthFactor, UajSweep,
                         ::testing::Values(std::make_tuple(1, 2),
                                           std::make_tuple(1, 3),
                                           std::make_tuple(1, 4),
                                           std::make_tuple(2, 2),
                                           std::make_tuple(2, 5),
                                           std::make_tuple(2, 6)));

class SkewSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SkewSweep, PreservesSemantics) {
  auto [Tile, T, N] = GetParam();
  std::ostringstream Src;
  Src << "#define T " << T << "\n#define N " << N << "\n";
  Src << R"(
double A[2][N + 2][N + 2];
int main() {
  int t, i, j;
#pragma @Locus loop=stencil
  for (t = 0; t < T; t++)
    for (i = 1; i < N + 1; i++)
      for (j = 1; j < N + 1; j++)
        A[(t + 1) % 2][i][j] = 0.25 * (A[t % 2][i - 1][j] + A[t % 2][i + 1][j] + A[t % 2][i][j - 1] + A[t % 2][i][j + 1]);
}
)";
  auto Base = parseOrDie(Src.str());
  auto Variant = Base->clone();
  TransformContext Ctx;
  Ctx.Prog = Variant.get();
  GenericTilingArgs Args;
  int64_t S = Tile;
  Args.Matrix = {{S, 0, 0}, {-S, S, 0}, {-S, 0, S}};
  TransformResult R =
      applyGenericTiling(*Variant->findRegions("stencil")[0], Args, Ctx);
  ASSERT_TRUE(R.applied()) << R.Message;
  expectEquivalent(*Base, *Variant, "skew sweep");
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkewSweep,
                         ::testing::Values(std::make_tuple(2, 5, 8),
                                           std::make_tuple(3, 6, 9),
                                           std::make_tuple(4, 7, 6),
                                           std::make_tuple(5, 4, 11),
                                           std::make_tuple(8, 9, 7)));

//===----------------------------------------------------------------------===//
// Randomized composition
//===----------------------------------------------------------------------===//

/// Applies a random transformation to the region; returns whether the module
/// reported success (illegal/error outcomes leave the region untouched only
/// for legality reasons — on success semantics must hold).
bool applyRandom(Block &Region, TransformContext &Ctx, Rng &R) {
  switch (R.index(8)) {
  case 0: {
    // Random permutation interchange on the (current) perfect nest.
    auto Outer = listOuterLoops(Region);
    if (Outer.empty())
      return false;
    std::vector<ForStmt *> Nest = perfectNest(*Outer[0].Loop);
    std::vector<int> Order(Nest.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = static_cast<int>(I);
    R.shuffle(Order);
    InterchangeArgs Args;
    Args.LoopPath = Outer[0].Path;
    Args.Order = Order;
    return applyInterchange(Region, Args, Ctx).succeeded();
  }
  case 1: {
    auto Outer = listOuterLoops(Region);
    if (Outer.empty())
      return false;
    size_t Depth = perfectNest(*Outer[0].Loop).size();
    TilingArgs Args;
    Args.LoopPath = Outer[0].Path;
    for (size_t I = 0; I < Depth; ++I)
      Args.Factors.push_back(R.range(1, 9));
    return applyTiling(Region, Args, Ctx).succeeded();
  }
  case 2: {
    auto Inner = listInnerLoops(Region);
    if (Inner.empty())
      return false;
    UnrollArgs Args;
    Args.LoopPath = Inner[R.index(Inner.size())].Path;
    Args.Factor = R.range(2, 6);
    return applyUnroll(Region, Args, Ctx).succeeded();
  }
  case 3: {
    auto Outer = listOuterLoops(Region);
    if (Outer.empty())
      return false;
    size_t Depth = perfectNest(*Outer[0].Loop).size();
    if (Depth < 2)
      return false;
    UnrollAndJamArgs Args;
    Args.LoopPath = Outer[0].Path;
    Args.Depth = static_cast<int>(R.range(1, static_cast<int64_t>(Depth) - 1));
    Args.Factor = R.range(2, 4);
    return applyUnrollAndJam(Region, Args, Ctx).succeeded();
  }
  case 4: {
    auto Loops = listLoops(Region);
    if (Loops.empty())
      return false;
    DistributionArgs Args;
    Args.LoopPath = Loops[R.index(Loops.size())].Path;
    return applyDistribution(Region, Args, Ctx).succeeded();
  }
  case 5:
    return applyLicm(Region, LicmArgs{}, Ctx).succeeded();
  case 6:
    return applyScalarRepl(Region, ScalarReplArgs{}, Ctx).succeeded();
  default: {
    auto Loops = listLoops(Region);
    if (Loops.empty())
      return false;
    OmpForArgs Args;
    Args.LoopPath = Loops[R.index(Loops.size())].Path;
    Args.Schedule = R.chance(0.5) ? "static" : "dynamic";
    Args.Chunk = R.range(0, 8);
    return applyOmpFor(Region, Args, Ctx).succeeded();
  }
  }
}

class RandomComposition : public ::testing::TestWithParam<int> {};

TEST_P(RandomComposition, StackedTransformationsPreserveSemantics) {
  const char *Sources[] = {
      MatmulOdd,
      // Imperfect nest with scalar work.
      R"(
#define N 14
#define M 9
double A[N][M];
double y[N];
double x[M];
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 0; i < N; i++) {
    y[i] = 0.5;
    for (j = 0; j < M; j++)
      y[i] = y[i] + A[i][j] * x[j];
  }
}
)",
      // Two fusable loops plus a stencil-ish dependence.
      R"(
#define N 24
double A[N];
double B[N];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < N; i++)
    A[i] = B[i] * 2.0;
  for (i = 1; i < N; i++)
    B[i] = A[i - 1] + 1.0;
}
)",
  };
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng R(Seed * 7919 + 13);
  const char *Source = Sources[Seed % 3];
  auto Base = parseOrDie(Source);
  auto Variant = Base->clone();
  std::string RegionName = Variant->regionNames()[0];
  TransformContext Ctx;
  Ctx.Prog = Variant.get();
  int Applied = 0;
  for (int Step = 0; Step < 5; ++Step) {
    Block *Region = Variant->findRegions(RegionName)[0];
    if (applyRandom(*Region, Ctx, R))
      ++Applied;
  }
  SCOPED_TRACE("seed " + std::to_string(Seed) + ", " +
               std::to_string(Applied) + " transforms applied");
  // Every accepted composition must produce verifier-clean IR (including
  // the unparse→reparse round trip) ...
  support::DiagEngine Diags;
  EXPECT_TRUE(analysis::verifyProgram(*Variant, Diags))
      << Diags.renderAll() << "\n=== printed ===\n"
      << printProgram(*Variant);
  // ... and preserve semantics.
  expectEquivalent(*Base, *Variant, "random composition seed " +
                                        std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomComposition, ::testing::Range(0, 24));

} // namespace
} // namespace locus
