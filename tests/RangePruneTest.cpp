//===- RangePruneTest.cpp - Range-driven pre-materialization pruning -----===//
///
/// \file
/// End-to-end tests of the legality oracle's symbolic dependent-range
/// resolution: on a space with a dependent range (tf = poweroftwo(2..tile))
/// the oracle proves sub-boxes invalid from the parameter intervals alone,
/// counts them in PrunedStaticByRange — and, the invariant everything hangs
/// on, changes nothing observable about the search: per-step trajectory,
/// best point, metrics, and the on-disk journal are bit-identical to a
/// prune-off run, for every built-in searcher.
///
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace locus {
namespace {

using driver::Orchestrator;
using driver::OrchestratorOptions;

const char *DependentRangeProgram = R"(
Search {
  buildcmd = "make";
  runcmd = "./matmul";
}

CodeReg matmul {
  tile = poweroftwo(2..8);
  tf = poweroftwo(2..tile);
  RoseLocus.Tiling(loop="0", factor=tile);
}
)";

struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(std::string(::testing::TempDir()) + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

driver::SearchWorkflowResult runDependentRange(const std::string &Searcher,
                                               bool StaticPrune,
                                               const std::string &Journal) {
  auto LP = lang::parseLocusProgram(DependentRangeProgram);
  EXPECT_TRUE(LP.ok()) << LP.message();
  auto CP = cir::parseProgram(workloads::dgemmSource(16, 16, 16));
  EXPECT_TRUE(CP.ok()) << CP.message();
  OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 24;
  Opts.Seed = 7;
  Opts.SearcherName = Searcher;
  Opts.StaticPrune = StaticPrune;
  Opts.JournalPath = Journal;
  Orchestrator Orch(**LP, **CP, Opts);
  auto R = Orch.runSearch();
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(*R);
}

class RangePrune : public ::testing::TestWithParam<const char *> {};

/// The acceptance anchor: a dependent-range tile space prunes by symbolic
/// range resolution (nonzero PrunedStaticByRange), and the prune-on run is
/// indistinguishable from the prune-off run — same trajectory, same best
/// point and metric, byte-identical journal.
TEST_P(RangePrune, PrunesByRangeWithoutChangingAnything) {
  const std::string Searcher = GetParam();
  TempFile JOn("range_prune_on_" + Searcher + ".rlog");
  TempFile JOff("range_prune_off_" + Searcher + ".rlog");
  driver::SearchWorkflowResult On =
      runDependentRange(Searcher, /*StaticPrune=*/true, JOn.Path);
  driver::SearchWorkflowResult Off =
      runDependentRange(Searcher, /*StaticPrune=*/false, JOff.Path);

  // The symbolic resolver actually fired, and only when pruning is on.
  EXPECT_GT(On.Search.PrunedStaticByRange, 0);
  EXPECT_LE(On.Search.PrunedStaticByRange, On.Search.PrunedStatic);
  EXPECT_EQ(Off.Search.PrunedStatic, 0);
  EXPECT_EQ(Off.Search.PrunedStaticByRange, 0);

  // Bit-identical trajectory.
  EXPECT_EQ(On.Search.Evaluations, Off.Search.Evaluations);
  EXPECT_EQ(On.Search.InvalidPoints, Off.Search.InvalidPoints);
  ASSERT_EQ(On.Search.History.size(), Off.Search.History.size());
  for (size_t I = 0; I < On.Search.History.size(); ++I) {
    EXPECT_EQ(On.Search.History[I].P.key(), Off.Search.History[I].P.key())
        << Searcher << " diverged at step " << I;
    EXPECT_EQ(On.Search.History[I].Valid, Off.Search.History[I].Valid);
    if (On.Search.History[I].Valid) {
      EXPECT_DOUBLE_EQ(On.Search.History[I].Metric,
                       Off.Search.History[I].Metric);
    }
  }
  EXPECT_EQ(driver::serializePoint(On.Search.Best),
            driver::serializePoint(Off.Search.Best));
  EXPECT_DOUBLE_EQ(On.Search.BestMetric, Off.Search.BestMetric);

  // Byte-identical journal: the pruned failure records carry the exact
  // failure kind and wording the interpreter would have produced.
  std::string BytesOn = slurp(JOn.Path);
  std::string BytesOff = slurp(JOff.Path);
  ASSERT_FALSE(BytesOn.empty());
  EXPECT_EQ(BytesOn, BytesOff) << Searcher << ": journals diverged";
}

INSTANTIATE_TEST_SUITE_P(AllSearchers, RangePrune,
                         ::testing::Values("exhaustive", "random", "hillclimb",
                                           "de", "bandit", "tpe"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

/// The pruned record's Detail matches the interpreter's range-violation
/// wording exactly (the journal-equality anchor above depends on it).
TEST(RangePruneDetail, FailureWordingMatchesTheInterpreter) {
  TempFile J("range_prune_detail.rlog");
  driver::SearchWorkflowResult R =
      runDependentRange("exhaustive", /*StaticPrune=*/true, J.Path);
  ASSERT_GT(R.Search.PrunedStaticByRange, 0);
  int RangeDetails = 0;
  for (const auto &Rec : R.Search.History)
    if (!Rec.Valid && Rec.Detail.find("violates range") != std::string::npos)
      ++RangeDetails;
  // tile in {2,4,8} x tf in {2,4,8}: tf=4>2, tf=8>2, tf=8>4 violate.
  EXPECT_EQ(RangeDetails, 3);
  EXPECT_EQ(R.Search.PrunedStaticByRange, 3);
}

/// Exhaustive ground truth on the full 9-point space: exactly the three
/// tf > tile combinations are pruned, all three by range resolution.
TEST(RangePruneDetail, ExhaustiveCountsMatchTheSpace) {
  TempFile J("range_prune_counts.rlog");
  driver::SearchWorkflowResult R =
      runDependentRange("exhaustive", /*StaticPrune=*/true, J.Path);
  EXPECT_EQ(R.Search.Evaluations, 9);
  EXPECT_EQ(R.Search.PrunedStatic, 3);
  EXPECT_EQ(R.Search.PrunedStaticByRange, 3);
  EXPECT_EQ(R.Search.failures(search::FailureKind::InvalidPoint), 3);
  EXPECT_TRUE(R.Search.Found);
}

} // namespace
} // namespace locus
