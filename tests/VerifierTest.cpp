//===- VerifierTest.cpp - CIR verifier unit + mutation tests ------------------===//
///
/// \file
/// Unit tests for analysis::verifyProgram / verifyAfterTransform, plus the
/// mutation test the verifier exists for: a deliberately buggy unroll that
/// drops its remainder iterations produces structurally valid IR that every
/// other check accepts — only statement-instance accounting (run under
/// verify-each) catches it, at the rewrite that introduced it, with a
/// located diagnostic instead of a checksum mismatch a full evaluation
/// later.
///
//===----------------------------------------------------------------------===//

#include "src/analysis/Verifier.h"
#include "src/cir/Parser.h"
#include "src/cir/Printer.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusParser.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace analysis;

std::unique_ptr<cir::Program> parseC(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

bool verify(const cir::Program &P, support::DiagEngine &Diags) {
  return verifyProgram(P, Diags);
}

/// First error message, or "" when none.
std::string firstError(const support::DiagEngine &Diags) {
  return Diags.hasErrors() ? Diags.firstError().Message : "";
}

TEST(Verifier, CleanProgramPasses) {
  auto P = parseC(R"(
double A[32][32];
int main() {
  int i, j;
#pragma @Locus loop=nest
  for (i = 0; i < 32; i++)
    for (j = 0; j < 32; j++)
      A[i][j] = A[i][j] * 2.0;
}
)");
  support::DiagEngine Diags;
  EXPECT_TRUE(verify(*P, Diags)) << Diags.renderAll();
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Verifier, UndefinedIdentifierIsALocatedError) {
  auto P = parseC(R"(
double A[10];
int main() {
  int i;
  for (i = 0; i < 10; i++)
    A[i] = q + 1.0;
}
)");
  if (!P)
    GTEST_SKIP() << "parser rejected the input before verification";
  support::DiagEngine Diags;
  EXPECT_FALSE(verify(*P, Diags));
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(firstError(Diags).find("'q' does not resolve"), std::string::npos)
      << firstError(Diags);
  EXPECT_TRUE(Diags.firstError().Loc.valid())
      << "error should carry the source line";
}

TEST(Verifier, ArrayRankMismatch) {
  auto P = parseC(R"(
double A[10][10];
int main() {
  int i;
  for (i = 0; i < 10; i++)
    A[i] = 1.0;
}
)");
  if (!P)
    GTEST_SKIP() << "parser rejected the input before verification";
  support::DiagEngine Diags;
  EXPECT_FALSE(verify(*P, Diags));
  EXPECT_NE(firstError(Diags).find("rank"), std::string::npos)
      << firstError(Diags);
}

TEST(Verifier, InductionVariableReassignment) {
  auto P = parseC(R"(
double A[10];
int main() {
  int i;
  for (i = 0; i < 10; i++) {
    A[i] = 1.0;
    i = i + 1;
  }
}
)");
  if (!P)
    GTEST_SKIP() << "parser rejected the input before verification";
  support::DiagEngine Diags;
  EXPECT_FALSE(verify(*P, Diags));
  EXPECT_NE(firstError(Diags).find("reassigned inside its loop"),
            std::string::npos)
      << firstError(Diags);
}

TEST(Verifier, InductionVariableRedefinedByNestedLoop) {
  auto P = parseC(R"(
double A[10][10];
int main() {
  int i;
  for (i = 0; i < 10; i++)
    for (i = 0; i < 10; i++)
      A[i][i] = 1.0;
}
)");
  if (!P)
    GTEST_SKIP() << "parser rejected the input before verification";
  support::DiagEngine Diags;
  EXPECT_FALSE(verify(*P, Diags));
  EXPECT_NE(firstError(Diags).find("redefined by a nested loop"),
            std::string::npos)
      << firstError(Diags);
}

TEST(Verifier, DuplicateRegionLabelWarnsButPasses) {
  auto P = parseC(R"(
double A[10];
double B[10];
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++)
    A[i] = 1.0;
#pragma @Locus loop=r
  for (j = 0; j < 10; j++)
    B[j] = 2.0;
}
)");
  support::DiagEngine Diags;
  EXPECT_TRUE(verify(*P, Diags));
  bool SawWarning = false;
  for (const auto &D : Diags.all())
    if (D.Sev == support::DiagSeverity::Warning &&
        D.Message.find("not unique") != std::string::npos)
      SawWarning = true;
  EXPECT_TRUE(SawWarning) << Diags.renderAll();
}

TEST(Verifier, RoundTripSurvivesPrinter) {
  auto P = parseC(R"(
double A[16][16];
double s;
int n;
int main() {
  int i, j;
#pragma @Locus loop=k
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      if (j > 2)
        A[i][j] = A[i][j - 1] + s * 0.5;
    }
  }
}
)");
  support::DiagEngine Diags;
  EXPECT_TRUE(verify(*P, Diags)) << Diags.renderAll();
}

TEST(Verifier, CountAssignInstances) {
  auto P = parseC(R"(
double A[8][4];
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 4; j++)
      A[i][j] = 0.0;
    A[i][0] = 1.0;
  }
}
)");
  auto Regions = P->findRegions("r");
  ASSERT_EQ(Regions.size(), 1u);
  std::optional<long long> N = countAssignInstances(*Regions[0]);
  ASSERT_TRUE(N.has_value());
  EXPECT_EQ(*N, 8 * 4 + 8);
}

TEST(Verifier, CountAssignInstancesIsNulloptUnderIf) {
  auto P = parseC(R"(
double A[8];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 8; i++)
    if (i > 3)
      A[i] = 0.0;
}
)");
  auto Regions = P->findRegions("r");
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_FALSE(countAssignInstances(*Regions[0]).has_value());
}

//===----------------------------------------------------------------------===//
// Mutation test: a buggy unroll that drops the remainder iterations.
//===----------------------------------------------------------------------===//

/// The seeded bug: after a successful unroll, delete everything that
/// follows the main loop in its replacement block — i.e. the remainder
/// iterations. The result is structurally valid IR; only instance
/// accounting can tell it apart from a correct unroll.
void dropUnrollRemainder(cir::Block &B) {
  for (auto &S : B.Stmts) {
    if (auto *Inner = cir::dyn_cast<cir::Block>(S.get())) {
      if (Inner->Stmts.size() > 1 &&
          cir::dyn_cast<cir::ForStmt>(Inner->Stmts.front().get()))
        Inner->Stmts.resize(1);
      dropUnrollRemainder(*Inner);
    } else if (auto *F = cir::dyn_cast<cir::ForStmt>(S.get())) {
      dropUnrollRemainder(*F->Body);
    } else if (auto *I = cir::dyn_cast<cir::IfStmt>(S.get())) {
      dropUnrollRemainder(*I->Then);
      if (I->Else)
        dropUnrollRemainder(*I->Else);
    }
  }
}

lang::ModuleRegistry buggyUnrollRegistry() {
  lang::ModuleRegistry R = lang::ModuleRegistry::standard();
  const lang::ModuleMember *Real = R.find("RoseLocus", "Unroll");
  EXPECT_NE(Real, nullptr);
  lang::ModuleFn RealFn = Real->Fn;
  lang::ModuleMember Buggy;
  Buggy.Fn = [RealFn](const lang::ModuleArgs &Args,
                      lang::ModuleCallContext &Ctx) {
    lang::ModuleOutcome O = RealFn(Args, Ctx);
    if (O.Result.succeeded() && Ctx.Region)
      dropUnrollRemainder(*Ctx.Region);
    return O;
  };
  Buggy.IsQuery = false;
  R.add("RoseLocus", "Unroll", Buggy);
  return R;
}

const char *unrollTarget() {
  // Trip count 10, factor 4: two remainder iterations to drop.
  return R"(
double A[10];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++)
    A[i] = A[i] + 1.0;
}
)";
}

const char *unrollRecipe() {
  return R"(
CodeReg r {
  RoseLocus.Unroll(factor=4);
}
)";
}

TEST(VerifierMutation, VerifyEachCatchesDroppedRemainder) {
  auto CP = parseC(unrollTarget());
  auto LPE = lang::parseLocusProgram(unrollRecipe());
  ASSERT_TRUE(LPE.ok()) << LPE.message();
  lang::ModuleRegistry Registry = buggyUnrollRegistry();
  lang::LocusInterpreter Interp(**LPE, Registry);

  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  TCtx.VerifyEach = true;
  lang::ExecOutcome Exec = Interp.applyDirect(*CP, TCtx);

  // The verifier rejects the rewrite at the unroll call itself. (Ok stays
  // true: invalidation is a skip signal, not a hard interpreter error.)
  EXPECT_TRUE(Exec.InvalidPoint);
  EXPECT_TRUE(Exec.IllegalTransform);
  EXPECT_NE(Exec.InvalidReason.find("verification"), std::string::npos)
      << Exec.InvalidReason;
  EXPECT_NE(Exec.InvalidReason.find("instance"), std::string::npos)
      << "expected the instance-accounting diagnostic, got: "
      << Exec.InvalidReason;
}

TEST(VerifierMutation, WithoutVerifyEachTheBugSlipsThrough) {
  auto CP = parseC(unrollTarget());
  auto LPE = lang::parseLocusProgram(unrollRecipe());
  ASSERT_TRUE(LPE.ok()) << LPE.message();
  lang::ModuleRegistry Registry = buggyUnrollRegistry();
  lang::LocusInterpreter Interp(**LPE, Registry);

  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  lang::ExecOutcome Exec = Interp.applyDirect(*CP, TCtx);

  // Interpretation alone accepts the broken variant: the bug would only
  // surface one full evaluation later, as a checksum mismatch.
  EXPECT_TRUE(Exec.Ok) << Exec.Error;
  EXPECT_FALSE(Exec.InvalidPoint) << Exec.InvalidReason;
  auto Regions = CP->findRegions("r");
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_EQ(countAssignInstances(*Regions[0]).value_or(-1), 8)
      << "the seeded bug should have dropped 2 of 10 instances";
}

TEST(VerifierMutation, CorrectUnrollPassesVerifyEach) {
  auto CP = parseC(unrollTarget());
  auto LPE = lang::parseLocusProgram(unrollRecipe());
  ASSERT_TRUE(LPE.ok()) << LPE.message();
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  lang::LocusInterpreter Interp(**LPE, Registry);

  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  TCtx.VerifyEach = true;
  lang::ExecOutcome Exec = Interp.applyDirect(*CP, TCtx);
  EXPECT_TRUE(Exec.Ok) << Exec.Error << " / " << Exec.InvalidReason;
  EXPECT_FALSE(Exec.InvalidPoint) << Exec.InvalidReason;
  auto Regions = CP->findRegions("r");
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_EQ(countAssignInstances(*Regions[0]).value_or(-1), 10);
}

} // namespace
} // namespace locus
