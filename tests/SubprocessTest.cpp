//===- SubprocessTest.cpp - Sandboxed execution tests -------------------------===//
//
// Exercises the sandbox against a deliberately misbehaving helper binary
// (tests/helpers/subprocess_victim.cpp, built by CMake without sanitizers),
// so no compiler is needed at test run time: timeout kill + SIGTERM->SIGKILL
// escalation, signal classification, rlimit enforcement, output-capture
// caps, process-group cleanup, hermetic TempDirs — and a search-level suite
// that drives every searcher over real hanging/crashing/garbage-printing
// subprocesses and checks the per-kind counters and the best point.
//
//===----------------------------------------------------------------------===//

#include "src/eval/NativeEvaluator.h"
#include "src/search/Search.h"
#include "src/support/Hashing.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

namespace locus {
namespace {

using namespace search;
using support::runSubprocess;
using support::SpawnExit;
using support::SubprocessOptions;
using support::SubprocessResult;
using support::TempDir;

const char *victimPath() { return LOCUS_SUBPROCESS_VICTIM; }

SubprocessOptions victim(std::initializer_list<std::string> Args) {
  SubprocessOptions Opts;
  Opts.Argv.push_back(victimPath());
  Opts.Argv.insert(Opts.Argv.end(), Args.begin(), Args.end());
  return Opts;
}

bool processAlive(pid_t Pid) {
  return kill(Pid, 0) == 0 || errno != ESRCH;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return stat(Path.c_str(), &St) == 0;
}

//===----------------------------------------------------------------------===//
// Exit classification
//===----------------------------------------------------------------------===//

TEST(Subprocess, CleanExitCapturesOutput) {
  SubprocessResult R = runSubprocess(victim({"metric", "0.25", "7.5"}));
  ASSERT_EQ(R.Exit, SpawnExit::Exited) << R.describe();
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Stdout, "LOCUS_TIME 0.250000000\nLOCUS_CHECKSUM 7.500000000\n");
  EXPECT_TRUE(R.Stderr.empty());
  EXPECT_FALSE(R.StdoutTruncated);
}

TEST(Subprocess, NonzeroExitCode) {
  SubprocessResult R = runSubprocess(victim({"exit", "3"}));
  ASSERT_EQ(R.Exit, SpawnExit::Exited);
  EXPECT_EQ(R.ExitCode, 3);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.describe(), "exited 3");
}

TEST(Subprocess, SegfaultClassifiesAsSignal) {
  SubprocessResult R = runSubprocess(victim({"segv"}));
  ASSERT_EQ(R.Exit, SpawnExit::Signaled) << R.describe();
  EXPECT_EQ(R.Signal, SIGSEGV);
  EXPECT_EQ(R.describe(), "killed by SIGSEGV");
}

TEST(Subprocess, AbortClassifiesAsSignal) {
  SubprocessResult R = runSubprocess(victim({"abrt"}));
  ASSERT_EQ(R.Exit, SpawnExit::Signaled) << R.describe();
  EXPECT_EQ(R.Signal, SIGABRT);
}

TEST(Subprocess, SpawnFailureIsReported) {
  SubprocessOptions Opts;
  Opts.Argv = {"/nonexistent/locus-no-such-binary"};
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::SpawnFailed);
  EXPECT_NE(R.SpawnError.find("locus-no-such-binary"), std::string::npos);
}

TEST(Subprocess, SignalNames) {
  EXPECT_EQ(support::signalName(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(support::signalName(SIGKILL), "SIGKILL");
  EXPECT_EQ(support::signalName(SIGXCPU), "SIGXCPU");
  EXPECT_EQ(support::signalName(1000), "signal 1000");
}

//===----------------------------------------------------------------------===//
// Watchdog: deadline, escalation, process-group kill
//===----------------------------------------------------------------------===//

TEST(Subprocess, TimeoutKillsSleepingChild) {
  SubprocessOptions Opts = victim({"sleep", "30"});
  Opts.Limits.WallClockSeconds = 0.3;
  Opts.Limits.TermGraceSeconds = 2.0;
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::TimedOut) << R.describe();
  // A sleeping child dies on the first SIGTERM; no escalation needed.
  EXPECT_FALSE(R.TermEscalated);
  EXPECT_LT(R.ElapsedSeconds, 5.0);
  EXPECT_NE(R.describe().find("timed out"), std::string::npos);
}

TEST(Subprocess, SigtermIgnoringChildIsEscalatedToSigkill) {
  SubprocessOptions Opts = victim({"hang", "3600"});
  Opts.Limits.WallClockSeconds = 0.3;
  Opts.Limits.TermGraceSeconds = 0.3;
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::TimedOut) << R.describe();
  EXPECT_TRUE(R.TermEscalated);
  EXPECT_EQ(R.Signal, SIGKILL);
  EXPECT_LT(R.ElapsedSeconds, 5.0);
  EXPECT_NE(R.describe().find("SIGTERM escalated to SIGKILL"),
            std::string::npos);
}

TEST(Subprocess, ProcessGroupKillReapsGrandchildren) {
  // The victim forks a SIGTERM-ignoring grandchild, reports its pid, and
  // hangs. The watchdog must take out the whole process group.
  SubprocessOptions Opts = victim({"orphan", "3600"});
  Opts.Limits.WallClockSeconds = 0.4;
  Opts.Limits.TermGraceSeconds = 0.2;
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::TimedOut) << R.describe();
  int ChildPid = 0;
  ASSERT_EQ(std::sscanf(R.Stdout.c_str(), "CHILD %d", &ChildPid), 1)
      << R.Stdout;
  ASSERT_GT(ChildPid, 0);
  // The grandchild must be gone (give the kernel a moment to reap).
  bool Gone = false;
  for (int I = 0; I < 100 && !Gone; ++I) {
    Gone = !processAlive(ChildPid);
    if (!Gone)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Gone) << "grandchild " << ChildPid
                    << " survived the group kill";
}

TEST(Subprocess, NoDeadlineMeansNoTimeout) {
  SubprocessOptions Opts = victim({"sleep", "0.1"});
  // WallClockSeconds stays 0: no watchdog.
  SubprocessResult R = runSubprocess(Opts);
  EXPECT_EQ(R.Exit, SpawnExit::Exited);
  EXPECT_TRUE(R.ok());
}

//===----------------------------------------------------------------------===//
// Rlimits
//===----------------------------------------------------------------------===//

TEST(Subprocess, CpuLimitDeliversSigxcpu) {
  if (!support::rlimitsSupported())
    GTEST_SKIP() << "rlimits unsupported on this host";
  SubprocessOptions Opts = victim({"spin", "30"});
  Opts.Limits.CpuSeconds = 1;
  Opts.Limits.WallClockSeconds = 20; // backstop, should not fire
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::Signaled) << R.describe();
  EXPECT_TRUE(R.Signal == SIGXCPU || R.Signal == SIGKILL) << R.Signal;
}

TEST(Subprocess, FileSizeLimitDeliversSigxfsz) {
  if (!support::rlimitsSupported())
    GTEST_SKIP() << "rlimits unsupported on this host";
  TempDir Work("locus-sbx-");
  ASSERT_TRUE(Work.valid());
  SubprocessOptions Opts = victim({"fwrite", "big.out"});
  Opts.WorkDir = Work.path();
  Opts.Limits.FileSizeBytes = 1 << 20; // 1 MiB, victim writes 64 MiB
  Opts.Limits.WallClockSeconds = 20;
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::Signaled) << R.describe();
  EXPECT_EQ(R.Signal, SIGXFSZ);
  // The partial file is capped at the limit.
  struct stat St;
  ASSERT_EQ(stat((Work.path() + "/big.out").c_str(), &St), 0);
  EXPECT_LE(St.st_size, 1 << 20);
}

TEST(Subprocess, AddressSpaceLimitStopsAllocation) {
  if (!support::rlimitsSupported())
    GTEST_SKIP() << "rlimits unsupported on this host";
  // 64 MiB cap, victim touches 512 MiB: malloc fails and the victim aborts.
  SubprocessOptions Opts = victim({"oom", "512"});
  Opts.Limits.AddressSpaceBytes = 64L * 1024 * 1024;
  Opts.Limits.WallClockSeconds = 20;
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::Signaled) << R.describe();
  EXPECT_EQ(R.Signal, SIGABRT);
  EXPECT_NE(R.Stderr.find("allocation failed"), std::string::npos)
      << R.Stderr;
}

//===----------------------------------------------------------------------===//
// Output capture
//===----------------------------------------------------------------------===//

TEST(Subprocess, CaptureCapTruncatesWithoutBlockingTheChild) {
  // The victim writes 4 MiB — far beyond both the cap and the kernel pipe
  // buffer. The sandbox must keep draining (or the child blocks forever)
  // while retaining only the cap.
  SubprocessOptions Opts = victim({"spew", "4194304"});
  Opts.Limits.MaxCaptureBytes = 1000;
  Opts.Limits.WallClockSeconds = 10;
  SubprocessResult R = runSubprocess(Opts);
  ASSERT_EQ(R.Exit, SpawnExit::Exited) << R.describe();
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout.size(), 1000u);
  EXPECT_TRUE(R.StdoutTruncated);
  EXPECT_EQ(R.Stdout.find_first_not_of('x'), std::string::npos);
}

TEST(Subprocess, ArgvIsNeverShellInterpreted) {
  TempDir Work("locus-sbx-");
  ASSERT_TRUE(Work.valid());
  std::string Trap = "; touch " + Work.path() + "/pwned";
  SubprocessOptions Opts = victim({"exit", "0", Trap});
  Opts.WorkDir = Work.path();
  SubprocessResult R = runSubprocess(Opts);
  EXPECT_TRUE(R.ok()) << R.describe();
  EXPECT_FALSE(fileExists(Work.path() + "/pwned"))
      << "argument was interpreted by a shell";
}

TEST(Subprocess, RunsInRequestedWorkDir) {
  TempDir Work("locus-sbx-");
  ASSERT_TRUE(Work.valid());
  SubprocessOptions Opts = victim({"fwrite", "here.txt"});
  Opts.WorkDir = Work.path();
  Opts.Limits.WallClockSeconds = 20;
  SubprocessResult R = runSubprocess(Opts);
  EXPECT_TRUE(R.ok()) << R.describe();
  EXPECT_TRUE(fileExists(Work.path() + "/here.txt"));
}

//===----------------------------------------------------------------------===//
// TempDir: hermetic workdirs
//===----------------------------------------------------------------------===//

TEST(SubprocessTempDir, UniquePathsAndRecursiveCleanup) {
  std::string P1, P2;
  {
    TempDir A("locus-t-"), B("locus-t-");
    ASSERT_TRUE(A.valid());
    ASSERT_TRUE(B.valid());
    P1 = A.path();
    P2 = B.path();
    EXPECT_NE(P1, P2);
    // Populate a nested tree; the destructor must remove all of it.
    ASSERT_EQ(mkdir((P1 + "/sub").c_str(), 0755), 0);
    std::ofstream(P1 + "/sub/file.txt") << "x";
    std::ofstream(P1 + "/top.txt") << "y";
  }
  EXPECT_FALSE(fileExists(P1));
  EXPECT_FALSE(fileExists(P2));
}

TEST(SubprocessTempDir, ReleaseKeepsTheDirectory) {
  std::string Kept;
  {
    TempDir T("locus-t-");
    ASSERT_TRUE(T.valid());
    Kept = T.release();
    EXPECT_EQ(T.path(), "");
  }
  EXPECT_TRUE(fileExists(Kept));
  rmdir(Kept.c_str());
}

TEST(SubprocessTempDir, RespectsBaseDirectory) {
  TempDir Base("locus-base-");
  ASSERT_TRUE(Base.valid());
  TempDir Inner("work-", Base.path());
  ASSERT_TRUE(Inner.valid());
  EXPECT_EQ(Inner.path().rfind(Base.path() + "/work-", 0), 0u)
      << Inner.path();
}

//===----------------------------------------------------------------------===//
// Concurrency: the sandbox under parallel callers (TSan coverage)
//===----------------------------------------------------------------------===//

TEST(Subprocess, ConcurrentRunsAreIndependent) {
  constexpr int Threads = 4, PerThread = 3;
  std::vector<std::thread> Ts;
  std::array<int, Threads> Failures{};
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([T, &Failures] {
      for (int I = 0; I < PerThread; ++I) {
        double Want = 0.001 * (T * PerThread + I + 1);
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.6f", Want);
        SubprocessResult R =
            runSubprocess(victim({"metric", Buf, "2.0"}));
        double Secs = 0, Sum = 0;
        if (!R.ok() ||
            !eval::parseNativeOutput(R.Stdout, Secs, Sum).ok() ||
            std::abs(Secs - Want) > 1e-9 || Sum != 2.0)
          ++Failures[T];
      }
    });
  for (std::thread &T : Ts)
    T.join();
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Failures[T], 0) << "thread " << T;
}

//===----------------------------------------------------------------------===//
// Subprocess-level fault injection: every searcher completes a search over
// real hanging / crashing / garbage-printing binaries with correct per-kind
// counters and an unchanged best point.
//===----------------------------------------------------------------------===//

enum class VictimMode { Clean, Hang, Segv, ExitNonzero, Garbage };

/// Deterministic per-point fault decision (~3/10 of the space misbehaves).
VictimMode modeFor(const Point &P, uint64_t Seed) {
  uint64_t H = fnv1a(P.key(), hashCombine(0x9e3779b97f4a7c15ULL, Seed));
  switch (H % 10) {
  case 0:
    return VictimMode::Hang;
  case 1:
    return (H >> 8) % 2 ? VictimMode::Segv : VictimMode::ExitNonzero;
  case 2:
    return VictimMode::Garbage;
  default:
    return VictimMode::Clean;
  }
}

FailureKind expectedKind(VictimMode M) {
  switch (M) {
  case VictimMode::Clean:
    return FailureKind::None;
  case VictimMode::Hang:
    return FailureKind::BudgetExceeded;
  case VictimMode::Segv:
  case VictimMode::ExitNonzero:
    return FailureKind::RuntimeTrap;
  case VictimMode::Garbage:
    return FailureKind::MetricUnstable;
  }
  return FailureKind::None;
}

Space victimSpace() {
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64;
  S.Params.push_back(A);
  ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);
  return S;
}

/// Separable metric with a unique optimum at a=16, b=7.
double victimMetric(const Point &P) {
  double A = static_cast<double>(P.getInt("a"));
  double B = static_cast<double>(P.getInt("b"));
  return 0.001 * (std::abs(std::log2(A) - 4.0) * 3 + std::abs(B - 7.0) + 1);
}

/// Every assessment spawns a real subprocess: clean points run the victim
/// in metric mode (the sandbox parses its harness output), faulty points
/// run it in a misbehaving mode, and the outcome flows through the exact
/// classification path the native evaluator uses. Stateless per call, so
/// the evaluation pool may assess points concurrently.
class SandboxedVictimObjective : public BatchObjective {
public:
  explicit SandboxedVictimObjective(uint64_t Seed) : Seed(Seed) {}

  EvalOutcome assess(const Point &P) override {
    VictimMode M = modeFor(P, Seed);
    SubprocessOptions Opts;
    Opts.Argv.push_back(victimPath());
    switch (M) {
    case VictimMode::Clean: {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.6f", victimMetric(P));
      Opts.Argv.insert(Opts.Argv.end(), {"metric", Buf, "2.0"});
      break;
    }
    case VictimMode::Hang:
      Opts.Argv.insert(Opts.Argv.end(), {"hang", "3600"});
      break;
    case VictimMode::Segv:
      Opts.Argv.push_back("segv");
      break;
    case VictimMode::ExitNonzero:
      Opts.Argv.insert(Opts.Argv.end(), {"exit", "3"});
      break;
    case VictimMode::Garbage:
      Opts.Argv.push_back("garbage");
      break;
    }
    Opts.Limits.WallClockSeconds = 0.25;
    Opts.Limits.TermGraceSeconds = 0.1;
    return eval::toEvalOutcome(eval::classifyNativeRun(runSubprocess(Opts)));
  }

private:
  uint64_t Seed;
};

/// Picks an injection seed whose fault map leaves the global optimum clean,
/// so the faulty and fault-free runs must agree on the best point.
uint64_t cleanOptimumSeed(const Space &S) {
  Point Best;
  Best.Values["a"] = int64_t(16);
  Best.Values["b"] = int64_t(7);
  (void)S;
  for (uint64_t Seed = 1;; ++Seed)
    if (modeFor(Best, Seed) == VictimMode::Clean)
      return Seed;
}

class SubprocessFaultSurvival : public ::testing::TestWithParam<const char *> {
};

TEST_P(SubprocessFaultSurvival, SearchCompletesOverMisbehavingBinaries) {
  Space S = victimSpace();
  uint64_t Seed = cleanOptimumSeed(S);
  SandboxedVictimObjective Obj(Seed);

  SearchOptions Opts;
  Opts.MaxEvaluations = 40;
  Opts.Seed = 7;
  auto Searcher = makeSearcher(GetParam());
  ASSERT_NE(Searcher, nullptr);
  SearchResult R = Searcher->search(S, Obj, Opts);

  // The search completed its budget; no fault took it down.
  EXPECT_LE(R.Evaluations, Opts.MaxEvaluations) << GetParam();
  EXPECT_EQ(static_cast<int>(R.History.size()), R.Evaluations) << GetParam();
  ASSERT_TRUE(R.Found) << GetParam();

  // Every record is classified exactly as its injected mode demands:
  // hang -> BudgetExceeded, SIGSEGV / nonzero exit -> RuntimeTrap,
  // garbage stdout -> MetricUnstable.
  int Faults = 0;
  for (const EvalRecord &Rec : R.History) {
    FailureKind Want = expectedKind(modeFor(Rec.P, Seed));
    EXPECT_EQ(Rec.Failure, Want)
        << GetParam() << " point " << Rec.P.key() << ": got "
        << failureKindName(Rec.Failure) << " want "
        << failureKindName(Want) << " (" << Rec.Detail << ")";
    if (Want == FailureKind::RuntimeTrap &&
        modeFor(Rec.P, Seed) == VictimMode::Segv) {
      EXPECT_NE(Rec.Detail.find("SIGSEGV"), std::string::npos) << GetParam();
    }
    if (!Rec.Valid)
      ++Faults;
  }
  EXPECT_EQ(Faults, R.InvalidPoints) << GetParam();
  int PerKindSum = 0;
  for (int K = 1; K < NumFailureKinds; ++K)
    PerKindSum += R.FailureCounts[static_cast<size_t>(K)];
  EXPECT_EQ(PerKindSum, R.InvalidPoints) << GetParam();

  // The winning point is clean and its metric is the victim's reported
  // time, parsed from real subprocess output.
  EXPECT_EQ(modeFor(R.Best, Seed), VictimMode::Clean) << GetParam();
  EXPECT_NEAR(R.BestMetric, victimMetric(R.Best), 1e-9) << GetParam();

  // Fault injection never changes the seeded best point: the same searcher
  // over the always-clean objective (same metric) agrees wherever it
  // explores a superset — both must at least agree when the faulty run
  // already found the global optimum.
  LambdaObjective CleanObj(LambdaObjective::OutcomeFn(
      [](const Point &P) { return EvalOutcome::success(victimMetric(P)); }));
  SearchResult CleanR = makeSearcher(GetParam())->search(S, CleanObj, Opts);
  ASSERT_TRUE(CleanR.Found) << GetParam();
  EXPECT_LE(CleanR.BestMetric, R.BestMetric + 1e-12) << GetParam();

  // No orphaned victims: everything the search spawned is gone.
  // (Processes are reaped synchronously by runSubprocess; a leak would be
  // a hang in one of the assessments above.)
}

INSTANTIATE_TEST_SUITE_P(AllSearchers, SubprocessFaultSurvival,
                         ::testing::Values("exhaustive", "random", "hillclimb",
                                           "de", "bandit", "tpe"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(SubprocessFaults, ExhaustiveFindsCleanOptimumAndJobsParity) {
  // Exhaustive over the whole 96-point space: the best point must be the
  // global optimum (seeded clean), identical with and without faults, and
  // identical between --jobs 1 and --jobs 4 (concurrent sandboxed
  // measurements commit in proposal order).
  Space S = victimSpace();
  uint64_t Seed = cleanOptimumSeed(S);

  SearchOptions Opts;
  Opts.MaxEvaluations = 96;
  Opts.Seed = 3;

  SandboxedVictimObjective Serial(Seed);
  SearchResult R1 = makeSearcher("exhaustive")->search(S, Serial, Opts);

  SearchOptions POpts = Opts;
  POpts.Jobs = 4;
  SandboxedVictimObjective Parallel(Seed);
  SearchResult R4 = makeSearcher("exhaustive")->search(S, Parallel, POpts);

  LambdaObjective CleanObj(LambdaObjective::OutcomeFn(
      [](const Point &P) { return EvalOutcome::success(victimMetric(P)); }));
  SearchResult RC = makeSearcher("exhaustive")->search(S, CleanObj, Opts);

  ASSERT_TRUE(R1.Found);
  ASSERT_TRUE(R4.Found);
  ASSERT_TRUE(RC.Found);
  EXPECT_EQ(R1.Best.key(), RC.Best.key())
      << "faults changed the best point";
  EXPECT_EQ(R1.Best.key(), R4.Best.key()) << "jobs changed the best point";
  EXPECT_EQ(R1.FailureCounts, R4.FailureCounts);
  EXPECT_EQ(R1.Evaluations, R4.Evaluations);
  EXPECT_GT(R4.PooledEvaluations, 0);
  EXPECT_EQ(R1.Best.getInt("a"), 16);
  EXPECT_EQ(R1.Best.getInt("b"), 7);
}

//===----------------------------------------------------------------------===//
// classifyNativeRun: the evaluator-facing classification (no compiler)
//===----------------------------------------------------------------------===//

TEST(SubprocessClassify, RunPhaseMapping) {
  using eval::classifyNativeRun;
  {
    SubprocessResult R = runSubprocess(victim({"metric", "0.5", "3.0"}));
    eval::NativeResult N = classifyNativeRun(R);
    ASSERT_TRUE(N.Ok) << N.Error;
    EXPECT_EQ(N.Failure, FailureKind::None);
    EXPECT_DOUBLE_EQ(N.Seconds, 0.5);
    EXPECT_DOUBLE_EQ(N.Checksum, 3.0);
  }
  {
    SubprocessOptions Opts = victim({"hang", "3600"});
    Opts.Limits.WallClockSeconds = 0.2;
    Opts.Limits.TermGraceSeconds = 0.1;
    eval::NativeResult N = classifyNativeRun(runSubprocess(Opts));
    EXPECT_FALSE(N.Ok);
    EXPECT_EQ(N.Failure, FailureKind::BudgetExceeded);
    EXPECT_NE(N.Error.find("timed out"), std::string::npos) << N.Error;
  }
  {
    eval::NativeResult N = classifyNativeRun(runSubprocess(victim({"segv"})));
    EXPECT_EQ(N.Failure, FailureKind::RuntimeTrap);
    EXPECT_NE(N.Error.find("SIGSEGV"), std::string::npos) << N.Error;
  }
  {
    eval::NativeResult N =
        classifyNativeRun(runSubprocess(victim({"exit", "9"})));
    EXPECT_EQ(N.Failure, FailureKind::RuntimeTrap);
    EXPECT_NE(N.Error.find("status 9"), std::string::npos) << N.Error;
  }
  {
    eval::NativeResult N =
        classifyNativeRun(runSubprocess(victim({"garbage"})));
    EXPECT_EQ(N.Failure, FailureKind::MetricUnstable);
    EXPECT_NE(N.Error.find("malformed run output"), std::string::npos)
        << N.Error;
  }
  {
    // Output past the capture cap cannot be validated -> unstable.
    SubprocessOptions Opts = victim({"spew", "100000"});
    Opts.Limits.MaxCaptureBytes = 512;
    eval::NativeResult N = classifyNativeRun(runSubprocess(Opts));
    EXPECT_EQ(N.Failure, FailureKind::MetricUnstable);
  }
}

} // namespace
} // namespace locus
