//===- JournalTest.cpp - Point codec and crash-safe journal tests --------===//

#include "src/driver/Orchestrator.h"
#include "src/search/EvalPool.h"
#include "src/search/Journal.h"
#include "src/search/PointCodec.h"
#include "src/search/Search.h"
#include "src/support/RecordLog.h"
#include "src/workloads/Workloads.h"

#include "src/cir/Parser.h"
#include "src/locus/LocusParser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace locus {
namespace {

using namespace search;

/// A scratch file removed on scope exit.
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(std::string(::testing::TempDir()) + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

Space smallSpace() {
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64;
  S.Params.push_back(A);
  ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);
  return S;
}

double synthetic(const Point &P, bool &Valid) {
  Valid = true;
  double A = static_cast<double>(P.getInt("a"));
  double B = static_cast<double>(P.getInt("b"));
  return std::abs(std::log2(A) - 4.0) * 3 + std::abs(B - 7.0);
}

//===----------------------------------------------------------------------===//
// Point codec
//===----------------------------------------------------------------------===//

TEST(PointCodec, RoundTripAllValueKinds) {
  Point P;
  P.Values["int"] = int64_t(-42);
  P.Values["big"] = int64_t(1) << 40;
  P.Values["float"] = 0.125;
  P.Values["name"] = std::string("ZGD");
  P.Values["perm"] = std::vector<int>{2, 0, 1};
  std::string Text = serializePoint(P);
  Space Empty;
  auto Back = deserializePoint(Text, Empty);
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_EQ(Back->key(), P.key());
  EXPECT_EQ(Back->getInt("int"), -42);
  EXPECT_EQ(Back->getInt("big"), int64_t(1) << 40);
  EXPECT_DOUBLE_EQ(Back->getFloat("float"), 0.125);
  EXPECT_EQ(Back->getString("name"), "ZGD");
  EXPECT_EQ(Back->getPerm("perm"), (std::vector<int>{2, 0, 1}));
}

TEST(PointCodec, DriverForwardersAgree) {
  Point P;
  P.Values["a"] = int64_t(16);
  EXPECT_EQ(driver::serializePoint(P), serializePoint(P));
  Space Empty;
  auto Back = driver::deserializePoint(serializePoint(P), Empty);
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->key(), P.key());
}

TEST(PointCodec, MalformedInputsAreErrorsNotCrashes) {
  Space Empty;
  // No " = " separator.
  EXPECT_FALSE(deserializePoint("a i:4\n", Empty).ok());
  // Missing tag separator.
  EXPECT_FALSE(deserializePoint("a = 4\n", Empty).ok());
  // Unknown tag.
  EXPECT_FALSE(deserializePoint("a = q:4\n", Empty).ok());
  // Non-numeric integer body (stoll would have thrown here).
  EXPECT_FALSE(deserializePoint("a = i:abc\n", Empty).ok());
  // Trailing garbage after the number.
  EXPECT_FALSE(deserializePoint("a = i:12x\n", Empty).ok());
  // Empty integer body.
  EXPECT_FALSE(deserializePoint("a = i:\n", Empty).ok());
  // Malformed float.
  EXPECT_FALSE(deserializePoint("a = f:1.2.3\n", Empty).ok());
  // Garbage permutation entry (atoi would have yielded 0 here).
  EXPECT_FALSE(deserializePoint("a = p:1,x,2\n", Empty).ok());
  // Huge integer that overflows int64.
  EXPECT_FALSE(deserializePoint("a = i:99999999999999999999999\n", Empty).ok());
}

TEST(PointCodec, UnpinnedParameterIsAnError) {
  Space S = smallSpace();
  auto R = deserializePoint("a = i:16\n", S); // "b" missing
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("does not pin b"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Journal encode/decode and load
//===----------------------------------------------------------------------===//

EvalRecord makeRecord(int64_t A, int64_t B, double Metric, FailureKind K,
                      const std::string &Detail = "") {
  EvalRecord R;
  R.P.Values["a"] = A;
  R.P.Values["b"] = B;
  R.Failure = K;
  R.Valid = K == FailureKind::None;
  R.Metric = R.Valid ? Metric : std::numeric_limits<double>::infinity();
  R.Detail = Detail;
  return R;
}

TEST(Journal, LineRoundTripIncludingEscapes) {
  Space S = smallSpace();
  EvalRecord R = makeRecord(16, 7, 123.5, FailureKind::None,
                            "detail with \"quotes\",\nnewline\tand \\slash");
  std::string Line = SearchJournal::encodeLine(R);
  EXPECT_EQ(Line.find('\n'), std::string::npos) << "journal lines are single";
  auto Back = SearchJournal::decodeLine(Line, S);
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_EQ(Back->P.key(), R.P.key());
  EXPECT_DOUBLE_EQ(Back->Metric, R.Metric);
  EXPECT_EQ(Back->Failure, FailureKind::None);
  EXPECT_TRUE(Back->Valid);
  EXPECT_EQ(Back->Detail, R.Detail);
}

TEST(Journal, FailedRecordRoundTripsKindAndInfiniteMetric) {
  Space S = smallSpace();
  EvalRecord R = makeRecord(8, 3, 0, FailureKind::ChecksumMismatch, "boom");
  auto Back = SearchJournal::decodeLine(SearchJournal::encodeLine(R), S);
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_EQ(Back->Failure, FailureKind::ChecksumMismatch);
  EXPECT_FALSE(Back->Valid);
  EXPECT_TRUE(std::isinf(Back->Metric));
}

TEST(Journal, AppendThenLoad) {
  Space S = smallSpace();
  TempFile F("journal_append.jsonl");
  {
    auto J = SearchJournal::open(F.Path);
    ASSERT_TRUE(J.ok()) << J.message();
    ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
    ASSERT_TRUE(
        J->append(makeRecord(2, 0, 0, FailureKind::RuntimeTrap, "trap")).ok());
    ASSERT_TRUE(J->append(makeRecord(32, 9, 20, FailureKind::None)).ok());
  }
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_TRUE(Loaded.ok()) << Loaded.message();
  EXPECT_EQ(Loaded->DroppedTailLines, 0);
  ASSERT_EQ(Loaded->Records.size(), 3u);
  EXPECT_TRUE(Loaded->Records[0].Valid);
  EXPECT_EQ(Loaded->Records[1].Failure, FailureKind::RuntimeTrap);
  EXPECT_EQ(Loaded->Records[1].Detail, "trap");
  EXPECT_EQ(Loaded->Records[2].P.key(), makeRecord(32, 9, 0, FailureKind::None).P.key());
}

TEST(Journal, AllSyncModesAppendAndLoad) {
  // The durability policy changes when bytes reach stable storage, never
  // what a clean close leaves on disk.
  Space S = smallSpace();
  for (JournalSync Mode :
       {JournalSync::None, JournalSync::Flush, JournalSync::Full}) {
    TempFile F("journal_sync.jsonl");
    {
      auto J = SearchJournal::open(F.Path, Mode);
      ASSERT_TRUE(J.ok()) << J.message();
      ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
      ASSERT_TRUE(J->append(makeRecord(32, 9, 20, FailureKind::None)).ok());
    }
    auto Loaded = SearchJournal::load(F.Path, S);
    ASSERT_TRUE(Loaded.ok()) << Loaded.message();
    EXPECT_EQ(Loaded->Records.size(), 2u)
        << "sync mode " << static_cast<int>(Mode);
  }
}

TEST(Journal, ParseJournalSyncNames) {
  bool Ok = false;
  EXPECT_EQ(parseJournalSync("none", Ok), JournalSync::None);
  EXPECT_TRUE(Ok);
  EXPECT_EQ(parseJournalSync("flush", Ok), JournalSync::Flush);
  EXPECT_TRUE(Ok);
  EXPECT_EQ(parseJournalSync("full", Ok), JournalSync::Full);
  EXPECT_TRUE(Ok);
  parseJournalSync("eventually", Ok);
  EXPECT_FALSE(Ok);
}

TEST(Journal, ConcurrentAppendsStayWholeLine) {
  // append() is internally serialized: lines from racing writers must never
  // interleave mid-record. Load back everything written by four threads and
  // check each line decodes.
  Space S = smallSpace();
  TempFile F("journal_concurrent.jsonl");
  {
    auto J = SearchJournal::open(F.Path, JournalSync::Flush);
    ASSERT_TRUE(J.ok());
    EvalPool Pool(4);
    Pool.run(64, [&](size_t I) {
      ASSERT_TRUE(J->append(makeRecord(1 << (I % 6 + 1),
                                       static_cast<int64_t>(I % 16),
                                       static_cast<double>(I),
                                       FailureKind::None))
                      .ok());
    });
  }
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_TRUE(Loaded.ok()) << Loaded.message();
  EXPECT_EQ(Loaded->Records.size(), 64u);
  EXPECT_EQ(Loaded->DroppedTailLines, 0);
}

TEST(Journal, EmptyAndMissingJournalsLoadAsEmpty) {
  Space S = smallSpace();
  TempFile F("journal_empty.jsonl");
  { std::ofstream(F.Path); } // create empty
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_TRUE(Loaded->Records.empty());
  auto Missing = SearchJournal::load(F.Path + ".nope", S);
  ASSERT_TRUE(Missing.ok());
  EXPECT_TRUE(Missing->Records.empty());
}

TEST(Journal, TruncatedLastLineIsDropped) {
  Space S = smallSpace();
  TempFile F("journal_torn.jsonl");
  {
    auto J = SearchJournal::open(F.Path);
    ASSERT_TRUE(J.ok());
    ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
    ASSERT_TRUE(J->append(makeRecord(4, 2, 30, FailureKind::None)).ok());
  }
  // Simulate a crash mid-append: a prefix of a valid frame, cut short
  // exactly as a dying writer leaves it.
  {
    std::string Frame = support::RecordLog::encodeFrame(
        SearchJournal::encodeLine(makeRecord(8, 1, 20, FailureKind::None)));
    std::ofstream Out(F.Path, std::ios::app | std::ios::binary);
    Out.write(Frame.data(), static_cast<std::streamsize>(Frame.size() / 2));
  }
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_TRUE(Loaded.ok()) << Loaded.message();
  EXPECT_EQ(Loaded->DroppedTailLines, 1);
  EXPECT_NE(Loaded->Warning.find("torn"), std::string::npos);
  ASSERT_EQ(Loaded->Records.size(), 2u);
}

TEST(Journal, CorruptMiddleLineIsAnError) {
  Space S = smallSpace();
  TempFile F("journal_corrupt.jsonl");
  {
    std::ofstream Out(F.Path, std::ios::binary);
    Out << SearchJournal::encodeLine(makeRecord(16, 7, 10, FailureKind::None))
        << "\n";
    Out << "not json at all\n";
    Out << SearchJournal::encodeLine(makeRecord(4, 2, 30, FailureKind::None))
        << "\n";
  }
  auto Loaded = SearchJournal::load(F.Path, S);
  EXPECT_FALSE(Loaded.ok());
}

TEST(Journal, JournalFromDifferentSpaceIsAnError) {
  Space Other;
  ParamDef X;
  X.Id = "x";
  X.Label = "x";
  X.Kind = ParamKind::IntRange;
  X.Min = 0;
  X.Max = 3;
  Other.Params.push_back(X);

  TempFile F("journal_space.jsonl");
  {
    auto J = SearchJournal::open(F.Path);
    ASSERT_TRUE(J.ok());
    // Records written against smallSpace (params a, b).
    ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
  }
  auto Loaded = SearchJournal::load(F.Path, Other);
  ASSERT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.message().find("does not match space"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// v2 header: fingerprints, located diagnostics, legacy migration
//===----------------------------------------------------------------------===//

TEST(Journal, HeaderRoundTrip) {
  JournalHeader H;
  H.SpaceFingerprint = 0x0123456789abcdefULL;
  H.ConfigDigest = 0xfedcba9876543210ULL;
  JournalHeader Back;
  ASSERT_TRUE(SearchJournal::parseHeader(SearchJournal::encodeHeader(H), Back));
  EXPECT_TRUE(Back == H);
  EXPECT_FALSE(SearchJournal::parseHeader("locus-journal v1\n", Back));
  EXPECT_FALSE(SearchJournal::parseHeader("", Back));
}

TEST(Journal, SpaceFingerprintIsStableAndStructureSensitive) {
  Space S = smallSpace();
  EXPECT_EQ(S.fingerprint(), smallSpace().fingerprint());
  Space Widened = smallSpace();
  Widened.Params[1].Max = 31; // b: 0..15 -> 0..31
  EXPECT_NE(S.fingerprint(), Widened.fingerprint());
  Space Renamed = smallSpace();
  Renamed.Params[0].Id = "a2";
  EXPECT_NE(S.fingerprint(), Renamed.fingerprint());
}

TEST(Journal, MismatchedSpaceFingerprintIsRefusedWithLocation) {
  Space S = smallSpace();
  TempFile F("journal_hdr_space.rlog");
  JournalHeader Written;
  Written.SpaceFingerprint = S.fingerprint();
  Written.ConfigDigest = journalConfigDigest("bandit", 42);
  {
    auto J = SearchJournal::open(F.Path, JournalSync::Full, Written);
    ASSERT_TRUE(J.ok()) << J.message();
    ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
  }
  JournalHeader Expect = Written;
  Expect.SpaceFingerprint ^= 1;
  auto Loaded = SearchJournal::load(F.Path, S, &Expect);
  ASSERT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.message().find("different search space"), std::string::npos)
      << Loaded.message();
  EXPECT_NE(Loaded.message().find("byte 16"), std::string::npos)
      << Loaded.message();
  // Reopening for append is refused the same way.
  auto Reopen = SearchJournal::open(F.Path, JournalSync::Full, Expect);
  ASSERT_FALSE(Reopen.ok());
  EXPECT_NE(Reopen.message().find("different search space"),
            std::string::npos);
}

TEST(Journal, MismatchedConfigDigestIsRefused) {
  Space S = smallSpace();
  TempFile F("journal_hdr_config.rlog");
  JournalHeader Written;
  Written.SpaceFingerprint = S.fingerprint();
  Written.ConfigDigest = journalConfigDigest("bandit", 42);
  {
    auto J = SearchJournal::open(F.Path, JournalSync::Full, Written);
    ASSERT_TRUE(J.ok()) << J.message();
  }
  JournalHeader Expect = Written;
  Expect.ConfigDigest = journalConfigDigest("tpe", 42);
  ASSERT_NE(Expect.ConfigDigest, Written.ConfigDigest);
  auto Loaded = SearchJournal::load(F.Path, S, &Expect);
  ASSERT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.message().find("different search configuration"),
            std::string::npos)
      << Loaded.message();
  // A matching header loads fine.
  auto Ok = SearchJournal::load(F.Path, S, &Written);
  EXPECT_TRUE(Ok.ok()) << Ok.message();
}

TEST(Journal, ConfigDigestSeparatesSearcherAndSeed) {
  uint64_t D = journalConfigDigest("bandit", 42);
  EXPECT_EQ(D, journalConfigDigest("bandit", 42));
  EXPECT_NE(D, journalConfigDigest("bandit", 43));
  EXPECT_NE(D, journalConfigDigest("random", 42));
}

TEST(Journal, FlippedByteBeforeTailIsALocatedError) {
  Space S = smallSpace();
  TempFile F("journal_bitrot.rlog");
  {
    auto J = SearchJournal::open(F.Path);
    ASSERT_TRUE(J.ok());
    ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
    ASSERT_TRUE(J->append(makeRecord(8, 3, 20, FailureKind::None)).ok());
    ASSERT_TRUE(J->append(makeRecord(4, 1, 30, FailureKind::None)).ok());
  }
  // Flip one payload byte in the middle record.
  auto Scan = support::RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  std::string Image = support::RecordLog::encodeHeaderBlock(Scan->Header);
  uint64_t FlipAt = 0;
  for (size_t I = 0; I < Scan->Records.size(); ++I) {
    if (I == 1)
      FlipAt = Image.size(); // offset of the frame we damage
    Image += support::RecordLog::encodeFrame(Scan->Records[I]);
  }
  Image[FlipAt + 8 + 2] ^= 0x40; // a payload byte of record 2
  {
    std::ofstream Out(F.Path, std::ios::trunc | std::ios::binary);
    Out << Image;
  }
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.message().find("CRC mismatch at byte " +
                                  std::to_string(FlipAt)),
            std::string::npos)
      << Loaded.message();
  EXPECT_NE(Loaded.message().find("remove the journal"), std::string::npos);
}

TEST(Journal, LegacyJsonlLoadsAndOpenMigratesToV2) {
  Space S = smallSpace();
  TempFile F("journal_legacy.jsonl");
  {
    // A v1 journal: plain JSONL, no header, no checksums.
    std::ofstream Out(F.Path, std::ios::binary);
    Out << SearchJournal::encodeLine(makeRecord(16, 7, 10, FailureKind::None))
        << "\n";
    Out << SearchJournal::encodeLine(makeRecord(8, 3, 20, FailureKind::None))
        << "\n";
  }
  JournalHeader H;
  H.SpaceFingerprint = S.fingerprint();

  // Opening for append without the loaded records is refused (appending v2
  // frames to a JSONL file would corrupt both formats)...
  auto Refused = SearchJournal::open(F.Path, JournalSync::Full, H);
  ASSERT_FALSE(Refused.ok());
  EXPECT_NE(Refused.message().find("legacy"), std::string::npos);

  // ...but load() understands v1 and open() migrates with its records.
  auto Loaded = SearchJournal::load(F.Path, S, &H);
  ASSERT_TRUE(Loaded.ok()) << Loaded.message();
  EXPECT_TRUE(Loaded->Legacy);
  ASSERT_EQ(Loaded->Records.size(), 2u);
  {
    auto J = SearchJournal::open(F.Path, JournalSync::Full, H,
                                 &Loaded->Records);
    ASSERT_TRUE(J.ok()) << J.message();
    ASSERT_TRUE(J->append(makeRecord(4, 1, 30, FailureKind::None)).ok());
  }
  auto Migrated = SearchJournal::load(F.Path, S, &H);
  ASSERT_TRUE(Migrated.ok()) << Migrated.message();
  EXPECT_FALSE(Migrated->Legacy);
  EXPECT_EQ(Migrated->Header.SpaceFingerprint, S.fingerprint());
  ASSERT_EQ(Migrated->Records.size(), 3u);
  EXPECT_EQ(Migrated->Records[0].P.key(),
            makeRecord(16, 7, 0, FailureKind::None).P.key());
  EXPECT_EQ(Migrated->Records[2].P.key(),
            makeRecord(4, 1, 0, FailureKind::None).P.key());
}

TEST(Journal, GarbageFileIsABadMagicError) {
  Space S = smallSpace();
  TempFile F("journal_garbage.rlog");
  {
    std::ofstream Out(F.Path, std::ios::binary);
    Out << "PNG\x89 definitely not a journal";
  }
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.message().find("bad magic at byte 0"), std::string::npos)
      << Loaded.message();
}

//===----------------------------------------------------------------------===//
// Kill-and-resume at the search layer
//===----------------------------------------------------------------------===//

class KillAndResume : public ::testing::TestWithParam<const char *> {};

TEST_P(KillAndResume, ResumedRunMatchesUninterruptedRun) {
  Space S = smallSpace();
  const int FullBudget = 60;
  const size_t KillAfter = 23;

  SearchOptions Base;
  Base.MaxEvaluations = FullBudget;
  Base.Seed = 99;

  // Uninterrupted reference run, journaled as it goes.
  TempFile F(std::string("journal_resume_") + GetParam() + ".jsonl");
  SearchResult Ref;
  {
    auto J = SearchJournal::open(F.Path);
    ASSERT_TRUE(J.ok());
    LambdaObjective RefObj(synthetic);
    SearchOptions Opts = Base;
    Opts.OnFreshEval = [&](const EvalRecord &R) {
      ASSERT_TRUE(J->append(R).ok());
    };
    Ref = makeSearcher(GetParam())->search(S, RefObj, Opts);
  }

  // Simulate the kill: a crashed process leaves a prefix of the history in
  // its journal, plus the torn frame it died inside. Rebuild the file with
  // the first KillAfter records and half of the next frame.
  {
    auto Scan = support::RecordLog::scan(F.Path);
    ASSERT_TRUE(Scan.ok()) << Scan.message();
    ASSERT_GT(Scan->Records.size(), KillAfter)
        << "reference run journaled too few records";
    std::string Image = support::RecordLog::encodeHeaderBlock(Scan->Header);
    for (size_t I = 0; I < KillAfter; ++I)
      Image += support::RecordLog::encodeFrame(Scan->Records[I]);
    std::string Torn =
        support::RecordLog::encodeFrame(Scan->Records[KillAfter]);
    Image.append(Torn.data(), Torn.size() / 2);
    std::ofstream Out(F.Path, std::ios::trunc | std::ios::binary);
    Out << Image;
  }

  // Resume: replay the journal (recovering the torn tail), finish the
  // budget.
  auto Loaded = SearchJournal::load(F.Path, S);
  ASSERT_TRUE(Loaded.ok()) << Loaded.message();
  ASSERT_EQ(Loaded->Records.size(), KillAfter);
  EXPECT_EQ(Loaded->DroppedTailLines, 1);

  int FreshCalls = 0;
  LambdaObjective CountedObj(
      LambdaObjective::OutcomeFn([&FreshCalls](const Point &P) {
        ++FreshCalls;
        bool Valid = true;
        return EvalOutcome::success(synthetic(P, Valid));
      }));
  SearchOptions Resume = Base;
  Resume.Replay = std::move(Loaded->Records);
  SearchResult Resumed = makeSearcher(GetParam())->search(S, CountedObj, Resume);

  // Same trajectory: same best point, same distinct-evaluation count, and
  // the objective only ran for the un-journaled remainder.
  EXPECT_EQ(Resumed.Best.key(), Ref.Best.key());
  EXPECT_EQ(Resumed.BestMetric, Ref.BestMetric);
  EXPECT_EQ(Resumed.Evaluations, Ref.Evaluations);
  EXPECT_EQ(Resumed.ReplayedEvaluations, static_cast<int>(KillAfter));
  EXPECT_EQ(FreshCalls, Ref.Evaluations - Resumed.ReplayedEvaluations);
}

INSTANTIATE_TEST_SUITE_P(Searchers, KillAndResume,
                         ::testing::Values("random", "hillclimb", "de",
                                           "bandit", "tpe", "exhaustive"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Kill-and-resume through the Orchestrator
//===----------------------------------------------------------------------===//

TEST(Journal, OrchestratorResumesInterruptedSearch) {
  auto LP = lang::parseLocusProgram(workloads::dgemmLocusFig5());
  ASSERT_TRUE(LP.ok()) << LP.message();
  auto CP = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
  ASSERT_TRUE(CP.ok()) << CP.message();

  driver::OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.Seed = 5;
  Opts.SearcherName = "bandit";
  Opts.MaxEvaluations = 24;

  // Uninterrupted reference.
  driver::Orchestrator Ref(**LP, **CP, Opts);
  auto RefR = Ref.runSearch();
  ASSERT_TRUE(RefR.ok()) << RefR.message();

  // Interrupted at 9 evaluations, journaled.
  TempFile F("orch_resume.jsonl");
  {
    driver::OrchestratorOptions Part = Opts;
    Part.MaxEvaluations = 9;
    Part.JournalPath = F.Path;
    driver::Orchestrator Orch(**LP, **CP, Part);
    auto R = Orch.runSearch();
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_LE(R->Search.Evaluations, 9);
  }

  // Resumed with the full budget.
  driver::OrchestratorOptions Res = Opts;
  Res.JournalPath = F.Path;
  Res.ResumeFromJournal = true;
  driver::Orchestrator Orch(**LP, **CP, Res);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->Search.ReplayedEvaluations, 9);
  EXPECT_EQ(R->Search.Evaluations, RefR->Search.Evaluations);
  EXPECT_EQ(R->Search.Best.key(), RefR->Search.Best.key());
  EXPECT_DOUBLE_EQ(R->BestCycles, RefR->BestCycles);
  EXPECT_EQ(R->BaselineChosen, RefR->BaselineChosen);

  // The journal now holds the full history and resuming again replays all
  // of it without fresh evaluations.
  driver::Orchestrator Again(**LP, **CP, Res);
  auto R2 = Again.runSearch();
  ASSERT_TRUE(R2.ok()) << R2.message();
  EXPECT_EQ(R2->Search.ReplayedEvaluations, R2->Search.Evaluations);
  EXPECT_EQ(R2->Search.Best.key(), RefR->Search.Best.key());
}

TEST(Journal, OrchestratorRejectsForeignJournal) {
  auto LP = lang::parseLocusProgram(workloads::dgemmLocusFig5());
  ASSERT_TRUE(LP.ok());
  auto CP = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
  ASSERT_TRUE(CP.ok());

  TempFile F("orch_foreign.jsonl");
  {
    auto J = SearchJournal::open(F.Path);
    ASSERT_TRUE(J.ok());
    ASSERT_TRUE(J->append(makeRecord(16, 7, 10, FailureKind::None)).ok());
  }
  driver::OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 6;
  Opts.JournalPath = F.Path;
  Opts.ResumeFromJournal = true;
  driver::Orchestrator Orch(**LP, **CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("cannot resume"), std::string::npos);
}

} // namespace
} // namespace locus
