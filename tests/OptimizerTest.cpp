//===- OptimizerTest.cpp - Locus-program optimizer tests (Section IV-C) -------===//

#include "src/cir/Parser.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusParser.h"
#include "src/locus/Optimizer.h"
#include "src/search/Search.h"
#include "src/support/Rng.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace lang;

std::unique_ptr<LocusProgram> parseL(const std::string &Src) {
  auto P = parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::unique_ptr<cir::Program> parseC(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

struct Optimized {
  std::unique_ptr<LocusProgram> Prog;
  OptimizeStats Stats;
};

Optimized optimize(const LocusProgram &Prog, cir::Program &Target) {
  ModuleRegistry Registry = ModuleRegistry::standard();
  transform::TransformContext TCtx;
  TCtx.Prog = &Target;
  Optimized Out;
  Out.Prog = optimizeLocusProgram(Prog, Target, Registry, TCtx, &Out.Stats);
  return Out;
}

TEST(LocusOptimizer, FoldsConstantsAndArithmetic) {
  auto LP = parseL(R"(
CodeReg matmul {
  a = 4;
  b = a * 2 + 1;
  c = b > 8;
  if (c) {
    print "big";
  } else {
    print "small";
  }
}
)");
  auto CP = parseC(workloads::dgemmSource(8, 8, 8));
  Optimized O = optimize(*LP, *CP);
  EXPECT_GT(O.Stats.ConstantsFolded, 0);
  EXPECT_EQ(O.Stats.BranchesPruned, 1);
  // The if is gone: its taken branch was inlined.
  const LBlock &Body = O.Prog->CodeRegs[0].second;
  bool HasIf = false;
  for (const LStmtPtr &S : Body.Stmts)
    if (S->Kind == LStmtKind::If)
      HasIf = true;
  EXPECT_FALSE(HasIf);
}

TEST(LocusOptimizer, SubstitutesQueries) {
  auto LP = parseL(R"(
CodeReg matmul {
  depth = BuiltIn.LoopNestDepth();
  if (depth > 1) {
    f = poweroftwo(2..8);
    RoseLocus.Tiling(loop="0", factor=[f, f]);
  }
}
)");
  auto CP = parseC(workloads::dgemmSource(8, 8, 8)); // depth 3
  Optimized O = optimize(*LP, *CP);
  EXPECT_EQ(O.Stats.QueriesSubstituted, 1);
  EXPECT_EQ(O.Stats.BranchesPruned, 1); // depth > 1 is constant-true
}

TEST(LocusOptimizer, PrunesDeadSubspaces) {
  // On a depth-1 nest the Fig. 13 tiling/unroll-and-jam constructs vanish.
  const char *Saxpy = R"(
#define N 16
double x[N];
double y[N];
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    y[i] = y[i] + x[i];
}
)";
  auto LP = parseL(workloads::fig13GenericProgram());
  auto CP = parseC(Saxpy);
  Optimized O = optimize(*LP, *CP);
  EXPECT_GE(O.Stats.QueriesSubstituted, 2);
  EXPECT_GT(O.Stats.BranchesPruned, 0);
  EXPECT_GT(O.Stats.StmtsRemoved, 0); // the depth>1 arm's statements died
}

TEST(LocusOptimizer, PreservesSpaceAndSemantics) {
  // The optimized program must expose the same space and produce the same
  // variants as the raw one.
  auto LP = parseL(workloads::fig13GenericProgram());
  std::string Src = workloads::dgemmSource(12, 12, 12);
  size_t Pos = Src.find("loop=matmul");
  Src.replace(Pos, 11, "loop=scop");
  auto CP = parseC(Src);
  Optimized O = optimize(*LP, *CP);

  ModuleRegistry Registry = ModuleRegistry::standard();
  search::Space Raw, Opt;
  {
    auto C1 = CP->clone();
    transform::TransformContext T1;
    T1.Prog = C1.get();
    LocusInterpreter(*LP, Registry).extractSpace(*C1, Raw, T1);
    auto C2 = CP->clone();
    transform::TransformContext T2;
    T2.Prog = C2.get();
    LocusInterpreter(*O.Prog, Registry).extractSpace(*C2, Opt, T2);
  }
  ASSERT_EQ(Raw.Params.size(), Opt.Params.size());
  for (size_t I = 0; I < Raw.Params.size(); ++I) {
    EXPECT_EQ(Raw.Params[I].Id, Opt.Params[I].Id);
    EXPECT_EQ(Raw.Params[I].cardinality(), Opt.Params[I].cardinality());
  }

  // A pinned point produces structurally identical variants either way.
  Rng R(5);
  for (int Trial = 0; Trial < 5; ++Trial) {
    search::Point P = search::samplePoint(Raw, R);
    auto V1 = CP->clone();
    auto V2 = CP->clone();
    transform::TransformContext T1, T2;
    T1.Prog = V1.get();
    T2.Prog = V2.get();
    ExecOutcome O1 = LocusInterpreter(*LP, Registry).applyPoint(*V1, P, T1);
    ExecOutcome O2 = LocusInterpreter(*O.Prog, Registry).applyPoint(*V2, P, T2);
    EXPECT_EQ(O1.Ok, O2.Ok);
    EXPECT_EQ(O1.InvalidPoint, O2.InvalidPoint);
    EXPECT_EQ(O1.TransformsApplied, O2.TransformsApplied);
  }
}

TEST(LocusOptimizer, DoesNotFoldThroughLoopsOrSearchValues) {
  auto LP = parseL(R"(
CodeReg matmul {
  a = 1;
  for (i = 0; i < 3; i = i + 1) {
    a = a * 2;
  }
  choice = enum("x", "y");
  if (choice == "x") {
    print "px";
  }
  if (a > 4) {
    print "pa";
  }
}
)");
  auto CP = parseC(workloads::dgemmSource(8, 8, 8));
  Optimized O = optimize(*LP, *CP);
  // Neither conditional may be pruned: 'a' changes in the loop, 'choice' is
  // a search variable.
  int Ifs = 0;
  for (const LStmtPtr &S : O.Prog->CodeRegs[0].second.Stmts)
    if (S->Kind == LStmtKind::If)
      ++Ifs;
  EXPECT_EQ(Ifs, 2);
}

} // namespace
} // namespace locus
