//===- PersistentCacheTest.cpp - Durable eval-cache tests ---------------------===//
//
// The persistent content-addressed cache: entry codec, warm starts across
// instances, graceful degradation on every store problem (the cache is
// advisory, never load-bearing), the MetricUnstable exclusion, and startup
// compaction of duplicate-heavy stores.
//
//===----------------------------------------------------------------------===//

#include "src/search/PersistentEvalCache.h"
#include "src/support/RecordLog.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

namespace locus {
namespace {

using search::CacheKey;
using search::EvalOutcome;
using search::PersistentCacheOptions;
using search::PersistentEvalCache;
using search::FailureKind;

struct CacheFixture {
  support::TempDir Dir{"locus-pcache-"};
  std::vector<std::string> Warnings;

  PersistentEvalCache make(bool ReadOnly = false) {
    PersistentCacheOptions Opts;
    Opts.Dir = Dir.path() + "/cache";
    Opts.ReadOnly = ReadOnly;
    return PersistentEvalCache(
        Opts, [this](const std::string &W) { Warnings.push_back(W); });
  }

  std::string storePath() const {
    return PersistentEvalCache::storePath(Dir.path() + "/cache");
  }
};

CacheKey key(uint64_t V) { return CacheKey{V, ~V}; }

TEST(PersistentCache, EntryCodecRoundTrips) {
  CacheKey K{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EvalOutcome Ok = EvalOutcome::success(1234.5);
  std::string E = PersistentEvalCache::encodeEntry(K, "p=1\tq=2", Ok);
  CacheKey K2;
  std::string PK;
  EvalOutcome O2;
  ASSERT_TRUE(PersistentEvalCache::decodeEntry(E, K2, PK, O2));
  EXPECT_EQ(K2, K);
  EXPECT_EQ(PK, "p=1\tq=2"); // tabs in the point key survive escaping
  EXPECT_TRUE(O2.ok());
  EXPECT_DOUBLE_EQ(O2.Metric, 1234.5);

  EvalOutcome Bad = EvalOutcome::fail(FailureKind::RuntimeTrap,
                                      "killed by\nSIGSEGV\tat pc=0");
  E = PersistentEvalCache::encodeEntry(K, "p", Bad);
  EXPECT_EQ(E.find('\n'), std::string::npos); // one record, one line
  ASSERT_TRUE(PersistentEvalCache::decodeEntry(E, K2, PK, O2));
  EXPECT_EQ(O2.Failure, FailureKind::RuntimeTrap);
  EXPECT_EQ(O2.Detail, "killed by\nSIGSEGV\tat pc=0");

  // Strictness: truncated or garbled records must be rejected, not guessed.
  EXPECT_FALSE(PersistentEvalCache::decodeEntry("", K2, PK, O2));
  EXPECT_FALSE(PersistentEvalCache::decodeEntry("nonsense", K2, PK, O2));
  EXPECT_FALSE(PersistentEvalCache::decodeEntry(E.substr(0, E.size() / 2), K2,
                                                PK, O2));
}

TEST(PersistentCache, WarmStartAcrossInstances) {
  CacheFixture F;
  {
    PersistentEvalCache C = F.make();
    EXPECT_FALSE(C.lookup(key(1), "pt1").has_value());
    C.insert(key(1), "pt1", EvalOutcome::success(10.0));
    C.insert(key(2), "pt2",
             EvalOutcome::fail(FailureKind::InvalidPoint, "refused"));
    EXPECT_EQ(C.persistentStats().AppendedEntries, 2u);
  }
  // A second instance (a later run, or another process) starts warm.
  PersistentEvalCache C2 = F.make();
  EXPECT_EQ(C2.persistentStats().LoadedEntries, 2u);
  EXPECT_FALSE(C2.persistentStats().Degraded);
  auto Hit = C2.lookup(key(1), "pt1");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(Hit->Metric, 10.0);
  auto Fail = C2.lookup(key(2), "other-point");
  ASSERT_TRUE(Fail.has_value());
  EXPECT_EQ(Fail->Failure, FailureKind::InvalidPoint);
  EXPECT_EQ(C2.stats().DedupSaves, 1u); // different point key, same variant
  EXPECT_TRUE(F.Warnings.empty()) << F.Warnings.front();
}

TEST(PersistentCache, MetricUnstableIsNeverPersisted) {
  CacheFixture F;
  {
    PersistentEvalCache C = F.make();
    C.insert(key(7), "pt",
             EvalOutcome::fail(FailureKind::MetricUnstable, "noisy host"));
    // Not cached at all — a flaky reading must be re-measured (the guard
    // layer owns within-run retries), never served again.
    EXPECT_FALSE(C.lookup(key(7), "pt").has_value());
    EXPECT_EQ(C.persistentStats().AppendedEntries, 0u);
  }
  // And never immortalized: the next run re-measures too.
  PersistentEvalCache C2 = F.make();
  EXPECT_EQ(C2.persistentStats().LoadedEntries, 0u);
  EXPECT_FALSE(C2.lookup(key(7), "pt").has_value());
}

TEST(PersistentCache, ReadOnlyModeServesButNeverWrites) {
  CacheFixture F;
  {
    PersistentEvalCache Writer = F.make();
    Writer.insert(key(3), "pt", EvalOutcome::success(3.0));
  }
  struct stat Before;
  ASSERT_EQ(::stat(F.storePath().c_str(), &Before), 0);
  PersistentEvalCache RO = F.make(/*ReadOnly=*/true);
  EXPECT_EQ(RO.persistentStats().LoadedEntries, 1u);
  EXPECT_TRUE(RO.lookup(key(3), "pt").has_value());
  RO.insert(key(4), "pt4", EvalOutcome::success(4.0));
  EXPECT_EQ(RO.persistentStats().AppendedEntries, 0u);
  // Served in-memory for this run, absent from the file.
  EXPECT_TRUE(RO.lookup(key(4), "pt4").has_value());
  struct stat After;
  ASSERT_EQ(::stat(F.storePath().c_str(), &After), 0);
  EXPECT_EQ(Before.st_size, After.st_size);
}

TEST(PersistentCache, CorruptStoreSalvagesThePrefixWithAWarning) {
  CacheFixture F;
  {
    PersistentEvalCache C = F.make();
    C.insert(key(1), "p1", EvalOutcome::success(1.0));
    C.insert(key(2), "p2", EvalOutcome::success(2.0));
  }
  // Tear the last frame as a crashed writer would.
  std::string Path = F.storePath();
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  In.close();
  std::string Image = Buf.str();
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      << Image.substr(0, Image.size() - 3);

  PersistentEvalCache C2 = F.make();
  EXPECT_EQ(C2.persistentStats().LoadedEntries, 1u);
  EXPECT_TRUE(C2.persistentStats().RecoveredTornTail);
  EXPECT_FALSE(C2.persistentStats().Degraded);
  EXPECT_TRUE(C2.lookup(key(1), "p1").has_value());
  EXPECT_FALSE(C2.lookup(key(2), "p2").has_value());
  ASSERT_FALSE(F.Warnings.empty());
  EXPECT_NE(F.Warnings[0].find("kept 1 intact entries"), std::string::npos)
      << F.Warnings[0];
  // The salvaged store keeps accepting appends.
  C2.insert(key(9), "p9", EvalOutcome::success(9.0));
  EXPECT_EQ(C2.persistentStats().AppendedEntries, 1u);
}

TEST(PersistentCache, ForeignFileDegradesToInMemory) {
  CacheFixture F;
  std::string Dir = F.Dir.path() + "/cache";
  ASSERT_EQ(::mkdir(Dir.c_str(), 0755), 0);
  std::ofstream(F.storePath()) << "not a record log\n";

  PersistentEvalCache C = F.make();
  EXPECT_TRUE(C.persistentStats().Degraded);
  EXPECT_GE(C.persistentStats().Warnings, 1u);
  ASSERT_FALSE(F.Warnings.empty());
  EXPECT_NE(F.Warnings[0].find("bad magic"), std::string::npos)
      << F.Warnings[0];
  // Degraded means in-memory, not broken: the search keeps its cache.
  C.insert(key(5), "p", EvalOutcome::success(5.0));
  EXPECT_TRUE(C.lookup(key(5), "p").has_value());
  EXPECT_EQ(C.persistentStats().AppendedEntries, 0u);
}

TEST(PersistentCache, UnwritableDirectoryDegradesGracefully) {
  if (::geteuid() == 0)
    GTEST_SKIP() << "root ignores directory permissions";
  CacheFixture F;
  std::string Dir = F.Dir.path() + "/cache";
  ASSERT_EQ(::mkdir(Dir.c_str(), 0555), 0);
  PersistentEvalCache C = F.make();
  EXPECT_TRUE(C.persistentStats().Degraded);
  C.insert(key(1), "p", EvalOutcome::success(1.0));
  EXPECT_TRUE(C.lookup(key(1), "p").has_value());
  ::chmod(Dir.c_str(), 0755);
}

TEST(PersistentCache, DuplicateHeavyStoreIsCompactedAtStartup) {
  CacheFixture F;
  {
    PersistentEvalCache C = F.make();
    C.insert(key(42), "pt", EvalOutcome::success(42.0));
  }
  // Simulate many racing processes re-appending the same entry.
  std::string Entry = PersistentEvalCache::encodeEntry(
      key(42), "pt", EvalOutcome::success(42.0));
  {
    support::RecordLogOptions LogOpts;
    LogOpts.RequireHeaderMatch = false;
    auto Log = support::RecordLog::open(F.storePath(), LogOpts);
    ASSERT_TRUE(Log.ok()) << Log.message();
    for (int I = 0; I < 100; ++I)
      ASSERT_TRUE(Log->append(Entry).ok());
  }
  struct stat Before;
  ASSERT_EQ(::stat(F.storePath().c_str(), &Before), 0);

  PersistentEvalCache C2 = F.make();
  EXPECT_EQ(C2.persistentStats().LoadedEntries, 1u);
  EXPECT_TRUE(C2.persistentStats().Compacted);
  struct stat After;
  ASSERT_EQ(::stat(F.storePath().c_str(), &After), 0);
  EXPECT_LT(After.st_size, Before.st_size);
  // The compacted store still round-trips.
  PersistentEvalCache C3 = F.make();
  EXPECT_EQ(C3.persistentStats().LoadedEntries, 1u);
  EXPECT_TRUE(C3.lookup(key(42), "pt").has_value());
}

TEST(PersistentCache, FirstLoadedEntryWinsDuplicateKeys) {
  // Two processes racing on one variant may both append; append order is
  // the cross-process tiebreak, so every reader resolves the key the same
  // way.
  CacheFixture F;
  {
    PersistentEvalCache C = F.make();
    C.insert(key(1), "pt", EvalOutcome::success(1.0));
  }
  {
    support::RecordLogOptions LogOpts;
    LogOpts.RequireHeaderMatch = false;
    auto Log = support::RecordLog::open(F.storePath(), LogOpts);
    ASSERT_TRUE(Log.ok());
    ASSERT_TRUE(Log->append(PersistentEvalCache::encodeEntry(
                                key(1), "pt", EvalOutcome::success(99.0)))
                    .ok());
  }
  PersistentEvalCache C2 = F.make();
  auto Hit = C2.lookup(key(1), "pt");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(Hit->Metric, 1.0);
}

} // namespace
} // namespace locus
