//===- FaultToleranceTest.cpp - Failure taxonomy, guards, fault injection -===//

#include "src/search/FaultInjection.h"
#include "src/search/FaultTolerance.h"
#include "src/search/Search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace locus {
namespace {

using namespace search;

Space mixedSpace() {
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64;
  S.Params.push_back(A);
  ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);
  ParamDef C;
  C.Id = "c";
  C.Label = "c";
  C.Kind = ParamKind::Enum;
  C.Options = {"x", "y", "z"};
  S.Params.push_back(C);
  return S;
}

/// Separable objective with a unique optimum: a=16, b=7, c=1.
double synthetic(const Point &P, bool &Valid) {
  Valid = true;
  double A = static_cast<double>(P.getInt("a"));
  double B = static_cast<double>(P.getInt("b"));
  double C = static_cast<double>(P.getInt("c"));
  return std::abs(std::log2(A) - 4.0) * 3 + std::abs(B - 7.0) +
         std::abs(C - 1.0) * 5;
}

int sumFailures(const SearchResult &R) {
  int Sum = 0;
  for (int K = 1; K < NumFailureKinds; ++K)
    Sum += R.FailureCounts[static_cast<size_t>(K)];
  return Sum;
}

//===----------------------------------------------------------------------===//
// Taxonomy plumbing
//===----------------------------------------------------------------------===//

TEST(FailureKinds, NamesRoundTrip) {
  for (int I = 0; I < NumFailureKinds; ++I) {
    FailureKind K = static_cast<FailureKind>(I);
    bool Ok = false;
    EXPECT_EQ(parseFailureKind(failureKindName(K), Ok), K);
    EXPECT_TRUE(Ok);
  }
  bool Ok = true;
  parseFailureKind("NotAKind", Ok);
  EXPECT_FALSE(Ok);
}

TEST(FailureKinds, PerKindCountsSumToInvalidPoints) {
  Space S = mixedSpace();
  // Classify deterministically by parameter value: b==0 traps, b==1 has a
  // checksum mismatch, b==2 is an invalid point; the rest are clean.
  LambdaObjective Obj(LambdaObjective::OutcomeFn([](const Point &P) {
    int64_t B = P.getInt("b");
    if (B == 0)
      return EvalOutcome::fail(FailureKind::RuntimeTrap, "trap");
    if (B == 1)
      return EvalOutcome::fail(FailureKind::ChecksumMismatch, "mismatch");
    if (B == 2)
      return EvalOutcome::fail(FailureKind::InvalidPoint, "range");
    bool Valid = true;
    double M = synthetic(P, Valid);
    return EvalOutcome::success(M);
  }));
  SearchOptions Opts;
  Opts.MaxEvaluations = 200;
  SearchResult R = makeRandomSearcher()->search(S, Obj, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.failures(FailureKind::RuntimeTrap), 0);
  EXPECT_GT(R.failures(FailureKind::ChecksumMismatch), 0);
  EXPECT_GT(R.failures(FailureKind::InvalidPoint), 0);
  EXPECT_EQ(R.failures(FailureKind::MetricUnstable), 0);
  EXPECT_EQ(sumFailures(R), R.InvalidPoints);
  // History records carry the per-record cause.
  int HistoryFailures = 0;
  for (const EvalRecord &Rec : R.History) {
    EXPECT_EQ(Rec.Valid, Rec.Failure == FailureKind::None);
    if (!Rec.Valid)
      ++HistoryFailures;
  }
  EXPECT_EQ(HistoryFailures, R.InvalidPoints);
}

TEST(FailureKinds, LegacyBoolLambdaMapsToInvalidPoint) {
  Space S = mixedSpace();
  LambdaObjective Obj([](const Point &P, bool &Valid) {
    if (P.getInt("b") == 0) {
      Valid = false;
      return 0.0;
    }
    return synthetic(P, Valid);
  });
  SearchOptions Opts;
  Opts.MaxEvaluations = 100;
  SearchResult R = makeRandomSearcher()->search(S, Obj, Opts);
  EXPECT_EQ(R.failures(FailureKind::InvalidPoint), R.InvalidPoints);
  EXPECT_GT(R.InvalidPoints, 0);
}

//===----------------------------------------------------------------------===//
// Fault injection: every searcher survives a 30% failure rate
//===----------------------------------------------------------------------===//

class SearcherFaultSurvival : public ::testing::TestWithParam<const char *> {};

TEST_P(SearcherFaultSurvival, SurvivesMixedInjectedFailures) {
  Space S = mixedSpace();
  LambdaObjective Inner(synthetic);
  FaultInjectionOptions FOpts;
  FOpts.FailureProbability = 0.3;
  FOpts.Seed = 1234;
  FaultInjectingObjective Faulty(Inner, FOpts);
  GuardedObjective Guarded(Faulty);

  SearchOptions Opts;
  Opts.MaxEvaluations = 150;
  Opts.Seed = 7;
  auto Searcher = makeSearcher(GetParam());
  ASSERT_NE(Searcher, nullptr);
  SearchResult R = Searcher->search(S, Guarded, Opts);

  // The searcher completed its budget without corrupting its state: counts
  // are consistent and the per-kind breakdown sums to the invalid total.
  EXPECT_LE(R.Evaluations, Opts.MaxEvaluations) << GetParam();
  EXPECT_EQ(static_cast<int>(R.History.size()), R.Evaluations) << GetParam();
  EXPECT_GT(R.InvalidPoints, 0) << GetParam();
  EXPECT_EQ(sumFailures(R), R.InvalidPoints) << GetParam();
  // The clean subspace is 70% of the space; a valid best must exist.
  ASSERT_TRUE(R.Found) << GetParam();
  EXPECT_TRUE(std::isfinite(R.BestMetric)) << GetParam();
  // The winning point itself is clean (or was flaky and recovered under the
  // retry guard; permanent failures can never win).
  FailureKind BestKind = Faulty.classify(R.Best);
  EXPECT_TRUE(BestKind == FailureKind::None ||
              BestKind == FailureKind::MetricUnstable)
      << GetParam() << ": " << failureKindName(BestKind);

  // Determinism survives injection: a second identical run agrees.
  FaultInjectingObjective Faulty2(Inner, FOpts);
  GuardedObjective Guarded2(Faulty2);
  SearchResult R2 = makeSearcher(GetParam())->search(S, Guarded2, Opts);
  EXPECT_EQ(R.Best.key(), R2.Best.key()) << GetParam();
  EXPECT_EQ(R.Evaluations, R2.Evaluations) << GetParam();
  EXPECT_EQ(R.FailureCounts, R2.FailureCounts) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSearchers, SearcherFaultSurvival,
                         ::testing::Values("exhaustive", "random", "hillclimb",
                                           "de", "bandit", "tpe"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(FaultInjection, BanditAndTpeConvergeOnCleanSubspace) {
  // Small space (6 * 16 = 96 points); compute the exact best clean point,
  // then require the adaptive searchers to find it despite 30% failures.
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64;
  S.Params.push_back(A);
  ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);

  auto Metric = [](const Point &P) {
    bool Valid = true;
    double AV = static_cast<double>(P.getInt("a"));
    double BV = static_cast<double>(P.getInt("b"));
    (void)Valid;
    return std::abs(std::log2(AV) - 4.0) * 3 + std::abs(BV - 7.0);
  };
  LambdaObjective Inner(LambdaObjective::OutcomeFn(
      [&](const Point &P) { return EvalOutcome::success(Metric(P)); }));

  FaultInjectionOptions FOpts;
  FOpts.FailureProbability = 0.3;
  FOpts.Seed = 99;
  FaultInjectingObjective Probe(Inner, FOpts); // classification only

  // The clean subspace: points the injector never fails, plus unstable
  // points (they recover under the retry guard).
  double CleanBest = std::numeric_limits<double>::infinity();
  std::string CleanBestKey;
  for (const PointValue &AV : enumerateValues(S.Params[0]))
    for (const PointValue &BV : enumerateValues(S.Params[1])) {
      Point P;
      P.Values["a"] = AV;
      P.Values["b"] = BV;
      FailureKind K = Probe.classify(P);
      if (K != FailureKind::None && K != FailureKind::MetricUnstable)
        continue;
      if (Metric(P) < CleanBest) {
        CleanBest = Metric(P);
        CleanBestKey = P.key();
      }
    }
  ASSERT_TRUE(std::isfinite(CleanBest));

  for (const char *Name : {"bandit", "tpe"}) {
    FaultInjectingObjective Faulty(Inner, FOpts);
    GuardedObjective Guarded(Faulty);
    SearchOptions Opts;
    Opts.MaxEvaluations = 300;
    Opts.Seed = 5;
    SearchResult R = makeSearcher(Name)->search(S, Guarded, Opts);
    ASSERT_TRUE(R.Found) << Name;
    EXPECT_EQ(R.BestMetric, CleanBest) << Name;
    EXPECT_EQ(R.Best.key(), CleanBestKey) << Name;
  }
}

TEST(FaultInjection, DeterministicClassification) {
  Space S = mixedSpace();
  LambdaObjective Inner(synthetic);
  FaultInjectionOptions FOpts;
  FOpts.FailureProbability = 0.5;
  FOpts.Seed = 7;
  FaultInjectingObjective F1(Inner, FOpts), F2(Inner, FOpts);
  Rng R(3);
  int Failed = 0;
  for (int I = 0; I < 200; ++I) {
    Point P = samplePoint(S, R);
    EXPECT_EQ(F1.classify(P), F2.classify(P));
    if (F1.classify(P) != FailureKind::None)
      ++Failed;
  }
  // ~50% fail rate with generous slack.
  EXPECT_GT(Failed, 50);
  EXPECT_LT(Failed, 150);
  // A different seed induces a different clean subspace.
  FOpts.Seed = 8;
  FaultInjectingObjective F3(Inner, FOpts);
  Rng R2(3);
  int Differs = 0;
  for (int I = 0; I < 200; ++I) {
    Point P = samplePoint(S, R2);
    if (F1.classify(P) != F3.classify(P))
      ++Differs;
  }
  EXPECT_GT(Differs, 0);
}

TEST(FaultInjection, KindMixIsRespected) {
  Space S = mixedSpace();
  LambdaObjective Inner(synthetic);
  FaultInjectionOptions FOpts;
  FOpts.FailureProbability = 1.0;
  FOpts.KindMix = {{FailureKind::RuntimeTrap, 1.0},
                   {FailureKind::ChecksumMismatch, 1.0}};
  FOpts.Seed = 11;
  FaultInjectingObjective Faulty(Inner, FOpts);
  Rng R(1);
  for (int I = 0; I < 100; ++I) {
    FailureKind K = Faulty.classify(samplePoint(S, R));
    EXPECT_TRUE(K == FailureKind::RuntimeTrap ||
                K == FailureKind::ChecksumMismatch)
        << failureKindName(K);
  }
}

//===----------------------------------------------------------------------===//
// Guards
//===----------------------------------------------------------------------===//

TEST(Guards, RetryRecoversUnstableMetric) {
  Space S = mixedSpace();
  LambdaObjective Inner(synthetic);
  FaultInjectionOptions FOpts;
  FOpts.FailureProbability = 1.0;
  FOpts.KindMix = {{FailureKind::MetricUnstable, 1.0}};
  FOpts.UnstableAttempts = 1; // flaky once, then stable
  FaultInjectingObjective Faulty(Inner, FOpts);
  GuardOptions GOpts;
  GOpts.MaxUnstableRetries = 2;
  GuardedObjective Guarded(Faulty, GOpts);

  Rng R(5);
  Point P = samplePoint(S, R);
  EvalOutcome Out = Guarded.assess(P);
  ASSERT_TRUE(Out.ok()) << Out.Detail;
  bool Valid = true;
  EXPECT_EQ(Out.Metric, synthetic(P, Valid));
  EXPECT_EQ(Guarded.stats().UnstableRetries, 1);
  EXPECT_EQ(Guarded.stats().UnstableRecovered, 1);
}

TEST(Guards, RetryBudgetIsBounded) {
  LambdaObjective Inner(LambdaObjective::OutcomeFn([](const Point &) {
    return EvalOutcome::fail(FailureKind::MetricUnstable, "always flaky");
  }));
  GuardOptions GOpts;
  GOpts.MaxUnstableRetries = 2;
  GOpts.QuarantineThreshold = 0;
  GuardedObjective Guarded(Inner, GOpts);
  Point P;
  P.Values["a"] = int64_t(1);
  EvalOutcome Out = Guarded.assess(P);
  EXPECT_EQ(Out.Failure, FailureKind::MetricUnstable);
  EXPECT_EQ(Guarded.stats().UnstableRetries, 2);
  EXPECT_EQ(Guarded.stats().UnstableRecovered, 0);
}

TEST(Guards, QuarantineAfterRepeatedFailures) {
  int InnerCalls = 0;
  LambdaObjective Inner(LambdaObjective::OutcomeFn([&](const Point &) {
    ++InnerCalls;
    return EvalOutcome::fail(FailureKind::RuntimeTrap, "boom");
  }));
  GuardOptions GOpts;
  GOpts.QuarantineThreshold = 2;
  GuardedObjective Guarded(Inner, GOpts);
  Point P;
  P.Values["a"] = int64_t(1);

  EXPECT_EQ(Guarded.assess(P).Failure, FailureKind::RuntimeTrap);
  EXPECT_FALSE(Guarded.isQuarantined(P));
  EXPECT_EQ(Guarded.assess(P).Failure, FailureKind::RuntimeTrap);
  EXPECT_TRUE(Guarded.isQuarantined(P));
  int CallsBefore = InnerCalls;
  // Quarantined: the cached failure is served without re-evaluating.
  EvalOutcome Out = Guarded.assess(P);
  EXPECT_EQ(Out.Failure, FailureKind::RuntimeTrap);
  EXPECT_NE(Out.Detail.find("quarantined"), std::string::npos);
  EXPECT_EQ(InnerCalls, CallsBefore);
  EXPECT_EQ(Guarded.stats().QuarantineRejects, 1);
  EXPECT_EQ(Guarded.stats().QuarantinedPoints, 1);
}

TEST(Guards, SuccessClearsFailureStreak) {
  int Calls = 0;
  LambdaObjective Inner(LambdaObjective::OutcomeFn([&](const Point &) {
    ++Calls;
    // Fail, succeed, fail, succeed...: the streak never reaches 2.
    if (Calls % 2 == 1)
      return EvalOutcome::fail(FailureKind::RuntimeTrap, "boom");
    return EvalOutcome::success(1.0);
  }));
  GuardOptions GOpts;
  GOpts.QuarantineThreshold = 2;
  GuardedObjective Guarded(Inner, GOpts);
  Point P;
  P.Values["a"] = int64_t(1);
  for (int I = 0; I < 6; ++I)
    Guarded.assess(P);
  EXPECT_FALSE(Guarded.isQuarantined(P));
  EXPECT_EQ(Guarded.stats().QuarantinedPoints, 0);
}

} // namespace
} // namespace locus
