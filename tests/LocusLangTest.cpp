//===- LocusLangTest.cpp - Locus language and interpreter tests --------------===//

#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusParser.h"
#include "src/search/Search.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace lang;

std::unique_ptr<LocusProgram> parseLocusOrDie(const std::string &Src) {
  auto P = parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::unique_ptr<cir::Program> parseCOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

const search::ParamDef *findByLabel(const search::Space &S,
                                    const std::string &Label) {
  for (const search::ParamDef &P : S.Params)
    if (P.Label == Label)
      return &P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

TEST(LocusParser, ParsesFig5) {
  auto P = parseLocusOrDie(workloads::dgemmLocusFig5());
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Imports.size(), 1u);
  EXPECT_EQ(P->OptSeqs.size(), 2u);
  EXPECT_EQ(P->Defs.size(), 1u);
  ASSERT_EQ(P->CodeRegs.size(), 1u);
  EXPECT_EQ(P->CodeRegs[0].first, "matmul");
}

TEST(LocusParser, ParsesFig7WithSearchBlock) {
  auto P = parseLocusOrDie(workloads::dgemmLocusFig7(512));
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->HasSearchBlock);
}

TEST(LocusParser, ParsesFig9Fig11Fig13) {
  EXPECT_NE(parseLocusOrDie(workloads::stencilLocusFig9(16, 128)), nullptr);
  for (const std::string &Kernel : workloads::kripkeKernels())
    EXPECT_NE(parseLocusOrDie(workloads::kripkeLocusFig11(Kernel)), nullptr)
        << Kernel;
  EXPECT_NE(parseLocusOrDie(workloads::fig13GenericProgram()), nullptr);
}

TEST(LocusParser, RangeLexing) {
  // "2..32" must not lex as a float.
  auto P = parseLocusOrDie("CodeReg r { x = poweroftwo(2..32); }");
  ASSERT_NE(P, nullptr);
}

TEST(LocusParser, ReportsSyntaxErrors) {
  EXPECT_FALSE(parseLocusProgram("CodeReg {").ok());
  EXPECT_FALSE(parseLocusProgram("OptSeq Foo() { x = ; }").ok());
  EXPECT_FALSE(parseLocusProgram("import 3;").ok());
}

//===----------------------------------------------------------------------===//
// Search settings
//===----------------------------------------------------------------------===//

TEST(LocusInterp, SearchBlockSettings) {
  auto P = parseLocusOrDie(workloads::dgemmLocusFig7(512));
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*P, Reg);
  auto Settings = Interp.searchSettings();
  ASSERT_TRUE(Settings.ok());
  EXPECT_EQ(Settings->getString("buildcmd"), "make clean; make");
  EXPECT_EQ(Settings->getString("runcmd"), "./matmul");
}

//===----------------------------------------------------------------------===//
// Space extraction
//===----------------------------------------------------------------------===//

TEST(LocusInterp, Fig5SpaceShape) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig5());
  auto CP = parseCOrDie(workloads::dgemmSource(16, 16, 16));
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ExecOutcome O = Interp.extractSpace(*CP, Space, TCtx);
  ASSERT_TRUE(O.Ok) << O.Error;

  ASSERT_EQ(Space.Params.size(), 3u) << Space.describe();
  const search::ParamDef *TileI = findByLabel(Space, "tileI");
  ASSERT_NE(TileI, nullptr);
  EXPECT_EQ(TileI->Kind, search::ParamKind::Pow2);
  EXPECT_EQ(TileI->cardinality(), 5u); // 2,4,8,16,32
  const search::ParamDef *Or = findByLabel(Space, "or:tiletype");
  ASSERT_NE(Or, nullptr);
  EXPECT_EQ(Or->cardinality(), 2u);

  // Tiling2D's 25 points (5x5) are the paper's count for that OptSeq.
  EXPECT_EQ(Space.valueSize(), 25u);
  EXPECT_EQ(Space.fullSize(), 50u);
}

TEST(LocusInterp, Fig7SpaceMatchesPaperCount) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig7(512));
  auto CP = parseCOrDie(workloads::dgemmSource(32, 32, 32));
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ExecOutcome O = Interp.extractSpace(*CP, Space, TCtx);
  ASSERT_TRUE(O.Ok) << O.Error;

  // 6 pow2 + OR-block + schedule enum + chunk integer.
  EXPECT_EQ(Space.Params.size(), 9u) << Space.describe();
  // The paper (via OpenTuner) reports 34,012,224 variants for Fig. 7:
  // 9^6 tile combinations x 2 schedules x 32 chunks.
  EXPECT_EQ(Space.valueSize(), 34012224u) << Space.describe();

  // Dependent ranges: tileI_2's max is tied to tileI.
  const search::ParamDef *TileI2 = findByLabel(Space, "tileI_2");
  ASSERT_NE(TileI2, nullptr);
  EXPECT_EQ(TileI2->Max, 512);
  const search::ParamDef *TileI = findByLabel(Space, "tileI");
  ASSERT_NE(TileI, nullptr);
  EXPECT_EQ(TileI2->DependsOnMaxParam, TileI->Id);
}

TEST(LocusInterp, Fig13ConditionalSpacePruning) {
  // A depth-1 nest: the interchange/unroll-and-jam constructs guarded by
  // depth > 1 must not enter the space (Section IV-C).
  const char *Saxpy = R"(
#define N 32
double x[N];
double y[N];
double a;
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    y[i] = y[i] + a * x[i];
}
)";
  auto LP = parseLocusOrDie(workloads::fig13GenericProgram());
  auto CP = parseCOrDie(Saxpy);
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ExecOutcome O = Interp.extractSpace(*CP, Space, TCtx);
  ASSERT_TRUE(O.Ok) << O.Error;

  EXPECT_EQ(findByLabel(Space, "permorder"), nullptr) << Space.describe();
  EXPECT_EQ(findByLabel(Space, "UAJfac"), nullptr) << Space.describe();
  EXPECT_NE(findByLabel(Space, "T1fac"), nullptr) << Space.describe();
  const search::ParamDef *T1 = findByLabel(Space, "indexT1");
  ASSERT_NE(T1, nullptr);
  EXPECT_EQ(T1->Min, 1);
  EXPECT_EQ(T1->Max, 1); // depth queried as 1

  // Depth-3 matmul keeps the full conditional space.
  auto CP2 = parseCOrDie(workloads::dgemmSource(16, 16, 16));
  // Rename region matmul -> scop for the generic program.
  std::string Src2 = workloads::dgemmSource(16, 16, 16);
  size_t Pos = Src2.find("loop=matmul");
  Src2.replace(Pos, 11, "loop=scop");
  auto CP3 = parseCOrDie(Src2);
  search::Space Space2;
  transform::TransformContext TCtx2;
  TCtx2.Prog = CP3.get();
  ExecOutcome O2 = Interp.extractSpace(*CP3, Space2, TCtx2);
  ASSERT_TRUE(O2.Ok) << O2.Error;
  EXPECT_NE(findByLabel(Space2, "permorder"), nullptr) << Space2.describe();
  EXPECT_NE(findByLabel(Space2, "UAJfac"), nullptr);
  const search::ParamDef *Perm = findByLabel(Space2, "permorder");
  EXPECT_EQ(Perm->PermSize, 3);
  EXPECT_EQ(Perm->cardinality(), 6u);
}

TEST(LocusInterp, IndirectAccessDisablesDependentConstructs) {
  const char *Indirect = R"(
#define N 32
double A[N];
double B[N];
int idx[N];
int main() {
  int i;
#pragma @Locus loop=scop
  for (i = 0; i < N; i++)
    A[idx[i]] = A[idx[i]] + B[i];
}
)";
  auto LP = parseLocusOrDie(workloads::fig13GenericProgram());
  auto CP = parseCOrDie(Indirect);
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ExecOutcome O = Interp.extractSpace(*CP, Space, TCtx);
  ASSERT_TRUE(O.Ok) << O.Error;
  // IsDepAvailable() is false: only the final unroll survives.
  EXPECT_EQ(findByLabel(Space, "T1fac"), nullptr) << Space.describe();
  ASSERT_EQ(Space.Params.size(), 1u) << Space.describe();
  EXPECT_EQ(Space.Params[0].Kind, search::ParamKind::Pow2);
}

//===----------------------------------------------------------------------===//
// Concrete execution
//===----------------------------------------------------------------------===//

search::Point pointFor(const search::Space &Space,
                       const std::map<std::string, search::PointValue> &ByLabel) {
  search::Point P;
  for (const search::ParamDef &Def : Space.Params) {
    auto It = ByLabel.find(Def.Label);
    if (It != ByLabel.end()) {
      P.Values[Def.Id] = It->second;
      continue;
    }
    // Default: first enumerable value.
    P.Values[Def.Id] = search::enumerateValues(Def)[0];
  }
  return P;
}

TEST(LocusInterp, Fig5ConcreteBothAlternatives) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig5());
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);

  auto CP = parseCOrDie(workloads::dgemmSource(16, 16, 16));
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ASSERT_TRUE(Interp.extractSpace(*CP, Space, TCtx).Ok);

  // Alternative 0: 2D tiling (tileI=4, tileJ=8) then unroll.
  {
    auto Target = parseCOrDie(workloads::dgemmSource(16, 16, 16));
    transform::TransformContext Ctx;
    Ctx.Prog = Target.get();
    search::Point P = pointFor(Space, {{"or:tiletype", int64_t(0)},
                                       {"tileI", int64_t(4)},
                                       {"tileJ", int64_t(8)}});
    ExecOutcome O = Interp.applyPoint(*Target, P, Ctx);
    ASSERT_TRUE(O.Ok) << O.Error;
    EXPECT_FALSE(O.InvalidPoint) << O.InvalidReason;
    EXPECT_GE(O.TransformsApplied, 2); // tiling + unroll
    ASSERT_FALSE(O.Log.empty());
    EXPECT_EQ(O.Log[0], "Tiling selected: 2D");
    cir::Block *Region = Target->findRegions("matmul")[0];
    // 2 tile loops + 3 element loops; innermost unrolled by 4 into the k
    // remainder structure.
    EXPECT_GE(cir::listLoops(*Region).size(), 5u);
  }

  // Alternative 1: fixed 3D tiling, no unroll.
  {
    auto Target = parseCOrDie(workloads::dgemmSource(16, 16, 16));
    transform::TransformContext Ctx;
    Ctx.Prog = Target.get();
    search::Point P = pointFor(Space, {{"or:tiletype", int64_t(1)}});
    ExecOutcome O = Interp.applyPoint(*Target, P, Ctx);
    ASSERT_TRUE(O.Ok) << O.Error;
    ASSERT_FALSE(O.Log.empty());
    EXPECT_EQ(O.Log[0], "Tiling selected: 3D");
    cir::Block *Region = Target->findRegions("matmul")[0];
    EXPECT_EQ(cir::listLoops(*Region).size(), 6u);
  }
}

TEST(LocusInterp, Fig7DependentRangeInvalidatesPoint) {
  auto LP = parseLocusOrDie(workloads::dgemmLocusFig7(64));
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  auto CP = parseCOrDie(workloads::dgemmSource(32, 32, 32));
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ASSERT_TRUE(Interp.extractSpace(*CP, Space, TCtx).Ok);

  // tileI_2 = 32 > tileI = 8 must invalidate the variant.
  auto Target = parseCOrDie(workloads::dgemmSource(32, 32, 32));
  transform::TransformContext Ctx;
  Ctx.Prog = Target.get();
  search::Point P = pointFor(Space, {{"tileI", int64_t(8)},
                                     {"tileK", int64_t(8)},
                                     {"tileJ", int64_t(8)},
                                     {"tileI_2", int64_t(32)},
                                     {"tileK_2", int64_t(4)},
                                     {"tileJ_2", int64_t(4)}});
  ExecOutcome O = Interp.applyPoint(*Target, P, Ctx);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_TRUE(O.InvalidPoint);
  EXPECT_NE(O.InvalidReason.find("violates range"), std::string::npos)
      << O.InvalidReason;
}

TEST(LocusInterp, Fig9StencilConcrete) {
  auto LP = parseLocusOrDie(workloads::stencilLocusFig9(4, 16));
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  std::string Src = workloads::stencilSource(workloads::StencilKind::Heat2D, 6, 10);
  auto CP = parseCOrDie(Src);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = CP.get();
  ASSERT_TRUE(Interp.extractSpace(*CP, Space, TCtx).Ok);
  ASSERT_EQ(Space.Params.size(), 1u) << Space.describe();

  auto Target = parseCOrDie(Src);
  transform::TransformContext Ctx;
  Ctx.Prog = Target.get();
  search::Point P = pointFor(Space, {{"skew1", int64_t(4)}});
  ExecOutcome O = Interp.applyPoint(*Target, P, Ctx);
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_FALSE(O.InvalidPoint) << O.InvalidReason;
  cir::Block *Region = Target->findRegions("stencil")[0];
  EXPECT_EQ(cir::listLoops(*Region).size(), 6u); // 3 tile + 3 intra
  // Vector pragmas landed on the innermost loop.
  auto Inner = cir::listInnerLoops(*Region);
  ASSERT_EQ(Inner.size(), 1u);
  EXPECT_EQ(Inner[0].Loop->Pragmas.size(), 2u);
}

TEST(LocusInterp, UnknownRegionWarnsButSucceeds) {
  auto LP = parseLocusOrDie("CodeReg nothere { RoseLocus.LICM(); }");
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  auto CP = parseCOrDie(workloads::dgemmSource(8, 8, 8));
  transform::TransformContext Ctx;
  Ctx.Prog = CP.get();
  ExecOutcome O = Interp.applyDirect(*CP, Ctx);
  EXPECT_TRUE(O.Ok) << O.Error;
  ASSERT_EQ(O.Log.size(), 1u);
  EXPECT_NE(O.Log[0].find("no code region"), std::string::npos);
}

TEST(LocusInterp, DefCannotInvokeModules) {
  const char *Src = R"(
def bad() {
  RoseLocus.LICM();
}
CodeReg matmul {
  bad();
}
)";
  auto LP = parseLocusOrDie(Src);
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  auto CP = parseCOrDie(workloads::dgemmSource(8, 8, 8));
  transform::TransformContext Ctx;
  Ctx.Prog = CP.get();
  ExecOutcome O = Interp.applyDirect(*CP, Ctx);
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Error.find("def methods"), std::string::npos) << O.Error;
}

TEST(LocusInterp, ControlFlowAndDataStructures) {
  const char *Src = R"(
CodeReg matmul {
  xs = [1, 2, 3];
  total = 0;
  for (i = 0; i < len(xs); i = i + 1) {
    total = total + xs[i];
  }
  d = dict();
  t = (total, "done");
  while (total < 10) {
    total = total + 2;
  }
  print str(total) + " " + t[1];
}
)";
  auto LP = parseLocusOrDie(Src);
  ModuleRegistry Reg = ModuleRegistry::standard();
  LocusInterpreter Interp(*LP, Reg);
  auto CP = parseCOrDie(workloads::dgemmSource(8, 8, 8));
  transform::TransformContext Ctx;
  Ctx.Prog = CP.get();
  ExecOutcome O = Interp.applyDirect(*CP, Ctx);
  ASSERT_TRUE(O.Ok) << O.Error;
  ASSERT_EQ(O.Log.size(), 1u);
  EXPECT_EQ(O.Log[0], "10 done");
}

} // namespace
} // namespace locus
