//===- ServiceTortureTest.cpp - Crash-torture for the tuning service ----------===//
//
// The service-level durability proof, the sibling of CrashTortureTest: real
// coordinator and worker *processes* (tests/helpers/search_crash_victim.cpp)
// are SIGKILLed at injected points and the service must converge on exactly
// the result of the run nobody interrupted.
//
//  - Coordinator SIGKILLed mid-append at three different injection points,
//    then resumed on the same queue dir + journal: identical BEST, METRIC
//    and journal trajectory; finished-but-unjournaled worker results are
//    recovered, never re-evaluated, never double-committed.
//  - A worker SIGKILLed mid-evaluation loses its lease, the task is
//    reassigned, and the trajectory still matches the local reference.
//  - A poison task that kills every worker that claims it is quarantined
//    after K distinct deaths and surfaces as a classified failure — the
//    search finishes instead of hanging.
//  - A fleet that dies on arrival degrades the coordinator to in-process
//    evaluation and the search still matches the local reference.
//  - SIGTERM mid-search: the cooperative stop flag flushes the journal,
//    reports partial results, and exits 0 (graceful shutdown satellite).
//
//===----------------------------------------------------------------------===//

#include "src/support/RecordLog.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace locus {
namespace {

using support::RecordLog;
using support::SubprocessOptions;
using support::SubprocessResult;

SubprocessResult runVictim(std::vector<std::string> Args) {
  SubprocessOptions Opts;
  Opts.Argv.push_back(LOCUS_SEARCH_VICTIM);
  for (std::string &A : Args)
    Opts.Argv.push_back(std::move(A));
  Opts.Limits.WallClockSeconds = 240;
  return support::runSubprocess(Opts);
}

/// The value of the "TAG ..." line of a victim's summary output.
std::string summaryLine(const std::string &Stdout, const std::string &Tag) {
  std::istringstream In(Stdout);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.compare(0, Tag.size() + 1, Tag + " ") == 0)
      return Line.substr(Tag.size() + 1);
  return "";
}

/// "key=value" fields of the SERVICE summary line.
uint64_t serviceField(const std::string &ServiceLine, const std::string &Key) {
  std::istringstream In(ServiceLine);
  std::string Field;
  while (In >> Field)
    if (Field.compare(0, Key.size() + 1, Key + "=") == 0)
      return std::strtoull(Field.c_str() + Key.size() + 1, nullptr, 10);
  return ~0ull;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

TEST(ServiceTorture, CoordinatorKilledMidAppendResumesToTheExactResult) {
  support::TempDir Dir("locus-svc-torture-");
  ASSERT_TRUE(Dir.valid());

  // The reference: the same search, single process, never interrupted.
  std::string RefJournal = Dir.path() + "/ref.rlog";
  SubprocessResult Ref = runVictim({"--searcher", "de", "--budget", "12",
                                    "--seed", "5", "--journal", RefJournal});
  ASSERT_TRUE(Ref.ok()) << Ref.describe() << "\n" << Ref.Stderr;
  std::string WantBest = summaryLine(Ref.Stdout, "BEST");
  std::string WantMetric = summaryLine(Ref.Stdout, "METRIC");
  ASSERT_FALSE(WantBest.empty());

  // SIGKILL the coordinator mid-append at three injection points — the
  // counter spans the journal AND the queue log, so both torn-tail cases
  // are hit — resuming on the same queue dir + journal each time. Workers
  // die with their coordinator (parent-death signal), but every result
  // already committed to the queue survives.
  std::string Journal = Dir.path() + "/svc.rlog";
  std::string QueueDir = Dir.path() + "/q";
  const char *CrashAt[] = {"3", "8:1", "13"};
  bool First = true;
  for (const char *Spec : CrashAt) {
    std::vector<std::string> Args = {"--searcher", "de",      "--budget", "12",
                                     "--seed",     "5",       "--journal",
                                     Journal,      "--serve", "2",
                                     "--queue-dir", QueueDir,  "--crash-at",
                                     Spec,         "--lease-timeout", "2"};
    if (!First)
      Args.push_back("--resume");
    First = false;
    SubprocessResult Crashed = runVictim(Args);
    ASSERT_EQ(Crashed.Exit, support::SpawnExit::Signaled) << Crashed.describe();
    ASSERT_EQ(Crashed.Signal, SIGKILL) << Crashed.describe();
  }

  // The final resume converges: same best, same metric, and a journal whose
  // records — the full committed history — are byte-identical to the
  // uninterrupted run's. Record equality is also the no-lost-task /
  // no-double-commit proof: any dropped or repeated evaluation would shift
  // the sequence.
  SubprocessResult Final = runVictim(
      {"--searcher", "de", "--budget", "12", "--seed", "5", "--journal",
       Journal, "--serve", "2", "--queue-dir", QueueDir, "--resume",
       "--lease-timeout", "2"});
  ASSERT_TRUE(Final.ok()) << Final.describe() << "\n" << Final.Stderr;
  EXPECT_EQ(summaryLine(Final.Stdout, "BEST"), WantBest);
  EXPECT_EQ(summaryLine(Final.Stdout, "METRIC"), WantMetric);

  auto RefScan = RecordLog::scan(RefJournal);
  auto SvcScan = RecordLog::scan(Journal);
  ASSERT_TRUE(RefScan.ok()) << RefScan.message();
  ASSERT_TRUE(SvcScan.ok()) << SvcScan.message();
  EXPECT_FALSE(RefScan->Records.empty());
  EXPECT_EQ(RefScan->Records, SvcScan->Records);

  // Every task the final run submitted was served by the service: recovered
  // from the queue, evaluated by a worker, or the degraded in-process path.
  // Zero submissions is also convergence, not loss — after enough crashes
  // the journal replay plus the warm eval cache can satisfy the whole
  // budget without a single new task.
  std::string Svc = summaryLine(Final.Stdout, "SERVICE");
  ASSERT_FALSE(Svc.empty());
  if (serviceField(Svc, "submitted") > 0)
    EXPECT_GT(serviceField(Svc, "recovered") + serviceField(Svc, "worker") +
                  serviceField(Svc, "local"),
              0u);

  // The crashed runs really did commit evaluation results into the queue
  // before dying — the recovered-result store the resumes fed from is
  // visible as result records in the surviving queue log.
  EXPECT_NE(readFile(QueueDir + "/queue.rlog").find("result "),
            std::string::npos);
}

TEST(ServiceTorture, WorkerKilledMidRunIsReassignedNotLost) {
  support::TempDir Dir("locus-svc-torture-");
  ASSERT_TRUE(Dir.valid());

  std::string RefJournal = Dir.path() + "/ref.rlog";
  SubprocessResult Ref = runVictim({"--searcher", "de", "--budget", "10",
                                    "--seed", "5", "--journal", RefJournal});
  ASSERT_TRUE(Ref.ok()) << Ref.describe() << "\n" << Ref.Stderr;

  // Slot 0's first incarnation SIGKILLs itself on its 5th queue append
  // (":0" = between frames: a worker process dying never tears the shared
  // log — each frame is a single write under the flock). Its lease expires,
  // the task is reassigned, the respawned incarnation finishes the run.
  SubprocessResult Srv = runVictim(
      {"--searcher", "de", "--budget", "10", "--seed", "5", "--journal",
       Dir.path() + "/svc.rlog", "--serve", "2", "--queue-dir",
       Dir.path() + "/q", "--worker-crash-at", "5:0", "--lease-timeout", "1",
       "--backoff", "0.05"});
  ASSERT_TRUE(Srv.ok()) << Srv.describe() << "\n" << Srv.Stderr;
  EXPECT_EQ(summaryLine(Srv.Stdout, "BEST"), summaryLine(Ref.Stdout, "BEST"));
  EXPECT_EQ(summaryLine(Srv.Stdout, "METRIC"),
            summaryLine(Ref.Stdout, "METRIC"));

  auto RefScan = RecordLog::scan(RefJournal);
  auto SvcScan = RecordLog::scan(Dir.path() + "/svc.rlog");
  ASSERT_TRUE(RefScan.ok()) << RefScan.message();
  ASSERT_TRUE(SvcScan.ok()) << SvcScan.message();
  EXPECT_EQ(RefScan->Records, SvcScan->Records);

  std::string Svc = summaryLine(Srv.Stdout, "SERVICE");
  ASSERT_FALSE(Svc.empty());
  EXPECT_GE(serviceField(Svc, "deaths"), 1u) << Svc;
  EXPECT_GE(serviceField(Svc, "spawned"), 2u) << Svc;
}

TEST(ServiceTorture, PoisonTaskIsQuarantinedAfterDistinctWorkerDeaths) {
  support::TempDir Dir("locus-svc-torture-");
  ASSERT_TRUE(Dir.valid());

  // Task 3 kills every worker the moment it is claimed. After two distinct
  // worker deaths the coordinator must quarantine it — the task completes
  // as a classified failure and the search finishes; a hang here would trip
  // the subprocess watchdog.
  SubprocessResult Srv = runVictim(
      {"--searcher", "de", "--budget", "8", "--seed", "5", "--journal",
       Dir.path() + "/svc.rlog", "--serve", "1", "--queue-dir",
       Dir.path() + "/q", "--die-on-task", "3", "--poison-deaths", "2",
       "--lease-timeout", "2", "--backoff", "0.05", "--max-respawns", "8"});
  ASSERT_TRUE(Srv.ok()) << Srv.describe() << "\n" << Srv.Stderr;

  std::string Svc = summaryLine(Srv.Stdout, "SERVICE");
  ASSERT_FALSE(Svc.empty());
  EXPECT_EQ(serviceField(Svc, "quarantined"), 1u) << Svc;
  EXPECT_GE(serviceField(Svc, "deaths"), 2u) << Svc;
  EXPECT_FALSE(summaryLine(Srv.Stdout, "BEST").empty());

  // The quarantine survives in the queue log as part of the failure
  // taxonomy, with the distinct dead workers named.
  auto Q = RecordLog::scan(Dir.path() + "/q/queue.rlog");
  ASSERT_TRUE(Q.ok()) << Q.message();
  bool SawQuarantine = false;
  for (const std::string &R : Q->Records)
    if (R.compare(0, 11, "quarantine ") == 0) {
      SawQuarantine = true;
      EXPECT_NE(R.find("distinct workers died"), std::string::npos) << R;
    }
  EXPECT_TRUE(SawQuarantine);
}

TEST(ServiceTorture, FleetThatDiesOnArrivalDegradesAndStillMatches) {
  support::TempDir Dir("locus-svc-torture-");
  ASSERT_TRUE(Dir.valid());

  std::string RefJournal = Dir.path() + "/ref.rlog";
  SubprocessResult Ref = runVictim({"--searcher", "de", "--budget", "8",
                                    "--seed", "5", "--journal", RefJournal});
  ASSERT_TRUE(Ref.ok()) << Ref.describe() << "\n" << Ref.Stderr;

  // Every worker SIGKILLs itself before its first claim; after the respawn
  // budget both slots retire and the coordinator must degrade to in-process
  // evaluation — graceful degradation means the search completes with the
  // *identical* trajectory, since the fallback is the same deterministic
  // objective.
  SubprocessResult Srv = runVictim(
      {"--searcher", "de", "--budget", "8", "--seed", "5", "--journal",
       Dir.path() + "/svc.rlog", "--serve", "2", "--queue-dir",
       Dir.path() + "/q", "--worker-die-immediately", "--max-respawns", "1",
       "--backoff", "0.02", "--degrade-grace", "0.3"});
  ASSERT_TRUE(Srv.ok()) << Srv.describe() << "\n" << Srv.Stderr;
  EXPECT_EQ(summaryLine(Srv.Stdout, "BEST"), summaryLine(Ref.Stdout, "BEST"));
  EXPECT_EQ(summaryLine(Srv.Stdout, "METRIC"),
            summaryLine(Ref.Stdout, "METRIC"));

  auto RefScan = RecordLog::scan(RefJournal);
  auto SvcScan = RecordLog::scan(Dir.path() + "/svc.rlog");
  ASSERT_TRUE(RefScan.ok()) << RefScan.message();
  ASSERT_TRUE(SvcScan.ok()) << SvcScan.message();
  EXPECT_EQ(RefScan->Records, SvcScan->Records);

  std::string Svc = summaryLine(Srv.Stdout, "SERVICE");
  ASSERT_FALSE(Svc.empty());
  EXPECT_EQ(serviceField(Svc, "degraded"), 1u) << Svc;
  EXPECT_GT(serviceField(Svc, "local"), 0u) << Svc;
  EXPECT_GE(serviceField(Svc, "deaths"), 2u) << Svc;
}

TEST(ServiceTorture, SigtermMidSearchFlushesPartialResultsAndExitsClean) {
  support::TempDir Dir("locus-svc-torture-");
  ASSERT_TRUE(Dir.valid());

  // The signal must land inside the victim's run, whose duration we cannot
  // know in advance, so sweep the delay from "mid-search on a slow host"
  // down to "during startup on a fast one". Each attempt can miss in two
  // benign ways — the search already finished (clean exit, no INTERRUPTED
  // line) or the signal beat the handler installation (signal death) — and
  // the sweep retries; at least one attempt must demonstrate the graceful
  // path: exit code 0, partial results reported, intact journal.
  const int DelaysMs[] = {120, 60, 30, 15, 8, 4, 2, 1, 0, 200};
  bool Interrupted = false;
  for (int Attempt = 0; Attempt < 10 && !Interrupted; ++Attempt) {
    std::string Out = Dir.path() + "/sigterm-" + std::to_string(Attempt);
    support::ChildProcessOptions Opts;
    Opts.Argv = {LOCUS_SEARCH_VICTIM, "--searcher", "de", "--budget", "2000",
                 "--seed", "5", "--journal", Out + ".rlog"};
    Opts.OutputPath = Out + ".log";
    auto Child = support::ChildProcess::spawn(Opts);
    ASSERT_TRUE(Child.ok()) << Child.message();
    std::this_thread::sleep_for(std::chrono::milliseconds(DelaysMs[Attempt]));
    Child->signalGroup(SIGTERM);
    ASSERT_TRUE(Child->waitExit(120)) << "victim ignored SIGTERM";
    ASSERT_TRUE(Child->exited()) << Child->describeExit();
    if (Child->exitCode() != 0)
      continue; // signal beat the handler installation; try again
    std::string Log = readFile(Out + ".log");
    Interrupted = !summaryLine(Log, "INTERRUPTED").empty();
    if (!Interrupted)
      continue; // the search finished before the signal; try a shorter delay

    // Graceful shutdown: the handler raised the cooperative flag, the
    // searcher stopped at the next budget check, partial results were
    // reported (the best seen so far), and the journal is intact — flushed,
    // no torn tail, one record per completed evaluation.
    EXPECT_FALSE(summaryLine(Log, "BEST").empty()) << Log;
    auto Scan = RecordLog::scan(Out + ".rlog");
    ASSERT_TRUE(Scan.ok()) << Scan.message();
    EXPECT_FALSE(Scan->TornTail);
  }
  EXPECT_TRUE(Interrupted)
      << "no attempt landed SIGTERM inside a running search";
}

} // namespace
} // namespace locus
