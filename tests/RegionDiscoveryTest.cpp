//===- RegionDiscoveryTest.cpp - Pragma-free region discovery tests -----------===//
///
/// \file
/// Exercises the discovery pipeline end to end: structural identification of
/// candidate nests on the unannotated PolyBench kernels, located rejection
/// and demotion reasons for every bail-out path, the hotness ranking and its
/// footprint refinement, annotation round-trips through the unparser/parser
/// pair — and the determinism anchor: tuning an auto-discovered region
/// replays to the bit-identical trajectory (same history, best point, metric
/// and journal bytes) as tuning the hand-annotated original, per searcher.
///
//===----------------------------------------------------------------------===//

#include "src/analysis/RegionDiscovery.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/Printer.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

namespace locus {
namespace {

using analysis::CandidateVerdict;
using analysis::DiscoveryReport;
using analysis::NestCandidate;
using driver::Orchestrator;
using driver::OrchestratorOptions;

std::unique_ptr<lang::LocusProgram> parseLocusOrDie(const std::string &Src) {
  auto P = lang::parseLocusProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

std::unique_ptr<cir::Program> parseCOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

OrchestratorOptions tinyOptions() {
  OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = 15;
  Opts.Seed = 5;
  return Opts;
}

/// A scratch file removed on scope exit.
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(std::string(::testing::TempDir()) + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

int countVerdict(const DiscoveryReport &R, CandidateVerdict V) {
  int N = 0;
  for (const NestCandidate &C : R.Candidates)
    N += C.Verdict == V;
  return N;
}

//===----------------------------------------------------------------------===//
// PolyBench identification and ranking
//===----------------------------------------------------------------------===//

/// Discovery finds the expected nest count in every unannotated PolyBench
/// kernel, every nest is annotatable, and names follow the rank order.
TEST(RegionDiscovery, FindsPolybenchNests) {
  const std::map<std::string, int> ExpectedNests = {
      {"gemver", 4}, {"atax", 2},    {"bicg", 2}, {"mvt", 2},
      {"syrk", 2},   {"gesummv", 1}, {"trmm", 1}, {"2mm", 2}};
  for (const std::string &Kernel : workloads::polybenchKernels()) {
    auto P = parseCOrDie(workloads::polybenchSource(Kernel, 40));
    DiscoveryReport R = analysis::discoverRegions(*P);
    EXPECT_EQ(R.NumScanned, ExpectedNests.at(Kernel)) << Kernel;
    EXPECT_EQ(countVerdict(R, CandidateVerdict::Rejected), 0) << Kernel;
    EXPECT_EQ(countVerdict(R, CandidateVerdict::Selected), R.NumScanned)
        << Kernel << ": every PolyBench nest is affine and dep-analyzable";
    ASSERT_FALSE(R.Candidates.empty());
    for (size_t I = 0; I < R.Candidates.size(); ++I) {
      EXPECT_EQ(R.Candidates[I].Name, "scop" + std::to_string(I)) << Kernel;
      EXPECT_TRUE(R.Candidates[I].Loc.valid()) << Kernel;
      // trmm's triangular inner bound (k < i) gives a range-refined trip
      // *estimate*; every other kernel has compile-time-exact trips.
      EXPECT_EQ(R.Candidates[I].TripExact, Kernel != "trmm") << Kernel;
    }
    // Ranked report renders every candidate.
    std::string Text = R.render();
    for (const NestCandidate &C : R.Candidates)
      EXPECT_NE(Text.find(C.Name), std::string::npos) << Kernel;
  }
}

/// The hotness model orders by modeled work: syrk's depth-3 accumulation
/// outranks its depth-2 scaling; atax's imperfect nest outranks the depth-1
/// init loop.
TEST(RegionDiscovery, HotnessOrdersByWork) {
  auto Syrk = parseCOrDie(workloads::polybenchSource("syrk", 40));
  DiscoveryReport R = analysis::discoverRegions(*Syrk);
  ASSERT_EQ(R.Candidates.size(), 2u);
  EXPECT_EQ(R.Candidates[0].Depth, 3);
  EXPECT_EQ(R.Candidates[1].Depth, 2);
  EXPECT_GT(R.Candidates[0].Hotness, R.Candidates[1].Hotness);
  EXPECT_EQ(R.Candidates[0].TripProduct, 40u * 40u * 40u);

  auto Atax = parseCOrDie(workloads::polybenchSource("atax", 40));
  DiscoveryReport RA = analysis::discoverRegions(*Atax);
  ASSERT_EQ(RA.Candidates.size(), 2u);
  EXPECT_EQ(RA.Candidates[0].Depth, 2);
  EXPECT_FALSE(RA.Candidates[0].Perfect)
      << "atax's hot nest has interleaved statements";
}

/// Footprint refinement: two nests with identical depth and trip counts,
/// one streaming a 32 KB array and one reusing a 512 B array. On the tiny
/// machine the large working set spills past L2 (latency 100 vs 2), so the
/// big-array nest ranks hotter.
TEST(RegionDiscovery, FootprintRefinesHotness) {
  auto P = parseCOrDie(R"(
double A[64][64];
double B[8][8];
int main() {
  int i, j;
  for (i = 0; i < 64; i++)
    for (j = 0; j < 64; j++)
      A[i][j] = A[i][j] + 1.0;
  for (i = 0; i < 64; i++)
    for (j = 0; j < 64; j++)
      B[i % 8][j % 8] = B[i % 8][j % 8] + 1.0;
  return 0;
}
)");
  analysis::DiscoveryOptions Opts;
  Opts.Machine = machine::MachineConfig::tiny();
  DiscoveryReport R = analysis::discoverRegions(*P, Opts);
  ASSERT_EQ(R.Candidates.size(), 2u);
  // Same depth and trips; only the footprint separates them.
  EXPECT_EQ(R.Candidates[0].TripProduct, R.Candidates[1].TripProduct);
  EXPECT_EQ(R.Candidates[0].FootprintBytes, 64u * 64u * 8u);
  EXPECT_EQ(R.Candidates[1].FootprintBytes, 8u * 8u * 8u)
      << "non-affine subscripts fall back to the declared array size";
  EXPECT_GT(R.Candidates[0].Hotness, R.Candidates[1].Hotness);
  EXPECT_EQ(R.Candidates[0].Name, "scop0");
}

//===----------------------------------------------------------------------===//
// Bail-out paths: located reasons, never silence, never crashes
//===----------------------------------------------------------------------===//

TEST(RegionDiscovery, UnknownCallRejectsWithLocation) {
  auto P = parseCOrDie(R"(
double A[16];
int main() {
  int i;
  for (i = 0; i < 16; i++) {
    init_array();
    A[i] = 1.0;
  }
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  const NestCandidate &C = R.Candidates[0];
  EXPECT_EQ(C.Verdict, CandidateVerdict::Rejected);
  EXPECT_TRUE(C.Name.empty());
  EXPECT_NE(C.Why.Message.find("init_array"), std::string::npos);
  EXPECT_TRUE(C.Why.Loc.valid()) << "rejection must be located";
  EXPECT_NE(R.render().find("init_array"), std::string::npos);
}

TEST(RegionDiscovery, NonAffineBoundRejectsWithLocation) {
  auto P = parseCOrDie(R"(
double A[256];
int main() {
  int i, n;
  n = 4;
  for (i = 0; i < n * n; i++)
    A[i] = 1.0;
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  const NestCandidate &C = R.Candidates[0];
  EXPECT_EQ(C.Verdict, CandidateVerdict::Rejected);
  EXPECT_NE(C.Why.Message.find("non-affine"), std::string::npos);
  EXPECT_NE(C.Why.Message.find("n * n"), std::string::npos);
  EXPECT_TRUE(C.Why.Loc.valid());
}

/// Min/max intrinsics are pure: they must not reject a nest (they appear in
/// every tiled variant's bounds).
TEST(RegionDiscovery, IntrinsicCallsDoNotReject) {
  auto P = parseCOrDie(R"(
double A[16][16];
int main() {
  int i, j;
  for (i = 0; i < 16; i++)
    for (j = 0; j < min(16, i + 8); j++)
      A[i][j] = 1.0;
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  EXPECT_NE(R.Candidates[0].Verdict, CandidateVerdict::Rejected);
}

/// Indirect subscripts defeat dependence analysis but not annotation: the
/// nest demotes with a located reason and keeps a region name.
TEST(RegionDiscovery, IndirectSubscriptDemotesWithLocation) {
  auto P = parseCOrDie(R"(
double A[16];
double B[16];
int main() {
  int i;
  for (i = 0; i < 16; i++)
    A[B[i]] = 1.0;
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  const NestCandidate &C = R.Candidates[0];
  EXPECT_EQ(C.Verdict, CandidateVerdict::Demoted);
  EXPECT_FALSE(C.DepAvailable);
  EXPECT_EQ(C.Name, "scop0") << "demoted nests stay annotatable";
  EXPECT_FALSE(C.Why.Message.empty());
  EXPECT_TRUE(C.Why.Loc.valid());
}

/// A conditional inside the nest demotes (dependence analysis bails) with a
/// located reason.
TEST(RegionDiscovery, ConditionalInNestDemotesWithLocation) {
  auto P = parseCOrDie(R"(
double A[16][16];
int main() {
  int i, j;
  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++)
      if (j > i)
        A[i][j] = 1.0;
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  EXPECT_EQ(R.Candidates[0].Verdict, CandidateVerdict::Demoted);
  EXPECT_FALSE(R.Candidates[0].Why.Message.empty());
  EXPECT_TRUE(R.Candidates[0].Why.Loc.valid());
}

/// An imperfect nest whose interleaved statement writes a scalar that later
/// subscripts read: dependence analysis reports unavailability with a
/// located reason and discovery demotes instead of skipping silently.
TEST(RegionDiscovery, InterleavedScalarSubscriptDemotesWithLocation) {
  auto P = parseCOrDie(R"(
double A[32][16];
double B[16];
int main() {
  int i, j, k;
  for (i = 0; i < 16; i++) {
    k = i + i;
    for (j = 0; j < 16; j++)
      A[k][j] = B[j];
  }
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  EXPECT_EQ(R.Candidates[0].Verdict, CandidateVerdict::Demoted);
  EXPECT_FALSE(R.Candidates[0].Perfect);
  EXPECT_FALSE(R.Candidates[0].Why.Message.empty());
  EXPECT_TRUE(R.Candidates[0].Why.Loc.valid());
}

/// Pointer declarations are outside MiniC: the parser reports a located
/// error instead of crashing, which is the front-end's bail-out path for
/// pointer-typed arrays.
TEST(RegionDiscovery, PointerTypedArrayIsALocatedParseError) {
  auto P = cir::parseProgram(R"(
double *A;
int main() {
  int i;
  for (i = 0; i < 10; i++)
    A[i] = 0.0;
  return 0;
}
)");
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.message().find("line"), std::string::npos)
      << "parse failure must carry a location: " << P.message();
}

/// Loops already inside @Locus regions are skipped with a note, not
/// re-discovered.
TEST(RegionDiscovery, AnnotatedLoopsAreSkippedWithNote) {
  auto P = parseCOrDie(workloads::dgemmSource(8, 8, 8));
  DiscoveryReport R = analysis::discoverRegions(*P);
  EXPECT_EQ(R.NumScanned, 0);
  EXPECT_EQ(R.NumAlreadyAnnotated, 1);
  ASSERT_FALSE(R.Notes.empty());
  bool SawSkip = false, SawEmpty = false;
  for (const support::Diag &N : R.Notes) {
    SawSkip |= N.Message.find("already annotated") != std::string::npos;
    SawEmpty |= N.Message.find("nothing to discover") != std::string::npos;
  }
  EXPECT_TRUE(SawSkip);
  EXPECT_TRUE(SawEmpty);
}

/// The Kripke proxy kernels call address_calc(): discovery rejects their
/// nests with a located reason instead of crashing on the unknown call.
TEST(RegionDiscovery, KripkeUnknownCallRejectsWithLocation) {
  workloads::KripkeConfig Config;
  auto P = parseCOrDie(analysis::stripLocusRegionPragmas(
      workloads::kripkeKernelSource(Config, workloads::kripkeKernels()[0])));
  DiscoveryReport R = analysis::discoverRegions(*P);
  ASSERT_GT(R.NumScanned, 0);
  for (const NestCandidate &C : R.Candidates) {
    if (C.Verdict != CandidateVerdict::Rejected)
      continue;
    EXPECT_FALSE(C.Why.Message.empty());
    EXPECT_TRUE(C.Why.Loc.valid());
  }
  EXPECT_GT(countVerdict(R, CandidateVerdict::Rejected), 0);
}

//===----------------------------------------------------------------------===//
// Empty input and the orchestrator's empty-region path
//===----------------------------------------------------------------------===//

TEST(RegionDiscovery, EmptyInputYieldsAdvisoryNote) {
  auto P = parseCOrDie(R"(
double x;
int main() {
  x = 1.0;
  return 0;
}
)");
  DiscoveryReport R = analysis::discoverRegions(*P);
  EXPECT_TRUE(R.Candidates.empty());
  EXPECT_EQ(R.NumScanned, 0);
  ASSERT_FALSE(R.Notes.empty());
  EXPECT_NE(R.Notes.front().Message.find("no loop nests"), std::string::npos);
  EXPECT_TRUE(R.Notes.front().Loc.valid())
      << "advisory note is located at the first statement";
  EXPECT_TRUE(analysis::annotateRegions(*P, R).ok());
}

/// A pragma-free translation unit flows through the whole orchestrator
/// without surprises: findRegions returns empty, the interpreter logs an
/// advisory warning, the space is empty, and the baseline is kept.
TEST(RegionDiscovery, OrchestratorHandlesUnannotatedInputGracefully) {
  std::string Stripped =
      analysis::stripLocusRegionPragmas(workloads::dgemmSource(8, 8, 8));
  auto CP = parseCOrDie(Stripped);
  EXPECT_TRUE(CP->findRegions("matmul").empty());
  EXPECT_TRUE(CP->regionNames().empty());

  // Search workflow: empty space, baseline chosen, no crash.
  auto LP = parseLocusOrDie(analysis::genericLocusProgram("matmul"));
  Orchestrator Orch(*LP, *CP, tinyOptions());
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->BaselineChosen);
  EXPECT_EQ(R->Space.Params.size(), 0u);

  // Direct workflow: the interpreter's advisory warning names the region.
  auto Direct = parseLocusOrDie(R"(
Search {
  buildcmd = "make";
  runcmd = "./matmul";
}

CodeReg matmul {
  RoseLocus.Unroll(loop="0", factor=2);
}
)");
  Orchestrator DOrch(*Direct, *CP, tinyOptions());
  auto DR = DOrch.runDirect();
  ASSERT_TRUE(DR.ok()) << DR.message();
  bool SawWarning = false;
  for (const std::string &Line : DR->Exec.Log)
    SawWarning |= Line.find("no code region named 'matmul'") !=
                  std::string::npos;
  EXPECT_TRUE(SawWarning);
}

//===----------------------------------------------------------------------===//
// Annotation synthesis
//===----------------------------------------------------------------------===//

/// Injected regions round-trip: the unparser emits `#pragma @Locus` markers
/// for them and reparsing reproduces the annotated tree.
TEST(RegionDiscovery, AnnotateRoundTripsThroughPrinter) {
  auto P = parseCOrDie(workloads::polybenchSource("mvt", 16));
  DiscoveryReport R = analysis::discoverRegions(*P);
  auto Injected = analysis::annotateRegions(*P, R);
  ASSERT_TRUE(Injected.ok()) << Injected.message();
  EXPECT_EQ(*Injected, 2);
  ASSERT_EQ(P->findRegions("scop0").size(), 1u);
  ASSERT_EQ(P->findRegions("scop1").size(), 1u);

  std::string Text = cir::printProgram(*P);
  EXPECT_NE(Text.find("#pragma @Locus loop=scop0"), std::string::npos);
  EXPECT_NE(Text.find("#pragma @Locus loop=scop1"), std::string::npos);
  auto Reparsed = parseCOrDie(Text);
  EXPECT_TRUE(cir::programEquals(*P, *Reparsed));
}

/// --discover-top truncation: only the hottest candidate is annotated.
TEST(RegionDiscovery, AnnotateTopNTruncates) {
  auto P = parseCOrDie(workloads::polybenchSource("gemver", 16));
  DiscoveryReport R = analysis::discoverRegions(*P);
  EXPECT_EQ(R.annotatable().size(), 4u);
  EXPECT_EQ(R.annotatable(2).size(), 2u);
  auto Injected = analysis::annotateRegions(*P, R, 1);
  ASSERT_TRUE(Injected.ok()) << Injected.message();
  EXPECT_EQ(*Injected, 1);
  EXPECT_EQ(P->regionNames(), std::vector<std::string>{"scop0"});
}

/// Stripping the hand annotation, rediscovering, renaming the candidate to
/// the hand label and annotating reproduces the hand-annotated program
/// exactly (structural equality) — the foundation of the determinism anchor.
TEST(RegionDiscovery, AnnotatedMatchesHandAnnotation) {
  std::string Hand = workloads::dgemmSource(16, 16, 16);
  auto HandP = parseCOrDie(Hand);

  auto StrippedP = parseCOrDie(analysis::stripLocusRegionPragmas(Hand));
  DiscoveryReport R = analysis::discoverRegions(*StrippedP);
  ASSERT_EQ(R.annotatable().size(), 1u);
  for (NestCandidate &C : R.Candidates)
    if (C.Verdict != CandidateVerdict::Rejected)
      C.Name = "matmul";
  auto Injected = analysis::annotateRegions(*StrippedP, R);
  ASSERT_TRUE(Injected.ok()) << Injected.message();
  EXPECT_TRUE(cir::programEquals(*HandP, *StrippedP));
}

/// Non-Locus pragmas survive stripping.
TEST(RegionDiscovery, StripKeepsForeignPragmas) {
  std::string Src = "#pragma omp parallel for\n"
                    "#pragma @Locus loop=x\n"
                    "  #pragma @Locus endblock\n"
                    "double A[4];\n";
  std::string Out = analysis::stripLocusRegionPragmas(Src);
  EXPECT_NE(Out.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_EQ(Out.find("@Locus"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The determinism anchor
//===----------------------------------------------------------------------===//

struct TuneResult {
  driver::SearchWorkflowResult R;
  std::string JournalBytes;
};

TuneResult tuneProgram(std::unique_ptr<cir::Program> CP,
                       const std::string &RegionName,
                       const std::string &Searcher, int Budget,
                       const std::string &JournalName) {
  TempFile Journal(JournalName);
  auto LP = parseLocusOrDie(analysis::genericLocusProgram(RegionName));
  OrchestratorOptions Opts = tinyOptions();
  Opts.SearcherName = Searcher;
  Opts.MaxEvaluations = Budget;
  Opts.JournalPath = Journal.Path;
  Orchestrator Orch(*LP, *CP, Opts);
  auto R = Orch.runSearch();
  EXPECT_TRUE(R.ok()) << R.message();
  return TuneResult{std::move(*R), slurp(Journal.Path)};
}

/// Tunes the hand-annotated source as-is.
TuneResult tuneHand(const std::string &Src, const std::string &RegionName,
                    const std::string &Searcher, int Budget) {
  return tuneProgram(parseCOrDie(Src), RegionName, Searcher, Budget,
                     "discovery_hand.rlog");
}

/// Strips the annotations, rediscovers the nest, renames it to the hand
/// label, annotates, and tunes the result.
TuneResult tuneDiscovered(const std::string &Src,
                          const std::string &RegionName,
                          const std::string &Searcher, int Budget) {
  auto CP = parseCOrDie(analysis::stripLocusRegionPragmas(Src));
  DiscoveryReport R = analysis::discoverRegions(*CP);
  EXPECT_EQ(R.annotatable().size(), 1u);
  for (NestCandidate &C : R.Candidates)
    if (C.Verdict != CandidateVerdict::Rejected)
      C.Name = RegionName;
  auto Injected = analysis::annotateRegions(*CP, R);
  EXPECT_TRUE(Injected.ok()) << Injected.message();
  return tuneProgram(std::move(CP), RegionName, Searcher, Budget,
                     "discovery_auto.rlog");
}

void expectIdenticalTrajectories(const TuneResult &Hand,
                                 const TuneResult &Auto,
                                 const std::string &Tag) {
  const search::SearchResult &H = Hand.R.Search, &A = Auto.R.Search;
  EXPECT_EQ(H.Evaluations, A.Evaluations) << Tag;
  ASSERT_EQ(H.History.size(), A.History.size()) << Tag;
  for (size_t I = 0; I < H.History.size(); ++I) {
    EXPECT_EQ(H.History[I].P.key(), A.History[I].P.key())
        << Tag << ": trajectory diverged at step " << I;
    EXPECT_EQ(H.History[I].Valid, A.History[I].Valid) << Tag;
    EXPECT_EQ(H.History[I].Failure, A.History[I].Failure) << Tag;
    EXPECT_EQ(H.History[I].Detail, A.History[I].Detail) << Tag;
    if (H.History[I].Valid)
      EXPECT_DOUBLE_EQ(H.History[I].Metric, A.History[I].Metric) << Tag;
  }
  EXPECT_EQ(driver::serializePoint(H.Best), driver::serializePoint(A.Best))
      << Tag;
  EXPECT_DOUBLE_EQ(H.BestMetric, A.BestMetric) << Tag;
  EXPECT_DOUBLE_EQ(Hand.R.BestCycles, Auto.R.BestCycles) << Tag;
  EXPECT_FALSE(Hand.JournalBytes.empty()) << Tag;
  EXPECT_EQ(Hand.JournalBytes, Auto.JournalBytes)
      << Tag << ": journal record sequences must be byte-identical";
}

/// Per searcher: tuning the auto-discovered DGEMM region replays to the
/// bit-identical trajectory of tuning the hand-annotated one — same point
/// sequence, metrics, best point and journal bytes.
TEST(RegionDiscovery, TrajectoryMatchesHandAnnotatedPerSearcher) {
  const std::string Src = workloads::dgemmSource(16, 16, 16);
  for (const std::string &Searcher :
       {"bandit", "tpe", "random", "hillclimb", "de"}) {
    TuneResult Hand = tuneHand(Src, "matmul", Searcher, 12);
    TuneResult Auto = tuneDiscovered(Src, "matmul", Searcher, 12);
    expectIdenticalTrajectories(Hand, Auto, "searcher=" + Searcher);
  }
}

/// Per seed workload: every hand-annotated kernel (DGEMM plus all six
/// stencils — whose modulo buffer-flip subscripts demote their candidate,
/// exercising the Demoted tuning path) anchors to the identical trajectory.
TEST(RegionDiscovery, TrajectoryMatchesHandAnnotatedPerWorkload) {
  std::vector<std::pair<std::string, std::string>> Workloads;
  Workloads.emplace_back(workloads::dgemmSource(16, 16, 16), "matmul");
  for (workloads::StencilKind K :
       {workloads::StencilKind::Jacobi1D, workloads::StencilKind::Heat1D,
        workloads::StencilKind::Seidel1D, workloads::StencilKind::Jacobi2D,
        workloads::StencilKind::Heat2D, workloads::StencilKind::Seidel2D}) {
    Workloads.emplace_back(workloads::stencilSource(K, 4, 12), "stencil");
  }
  for (size_t I = 0; I < Workloads.size(); ++I) {
    const auto &[Src, Region] = Workloads[I];
    TuneResult Hand = tuneHand(Src, Region, "bandit", 8);
    TuneResult Auto = tuneDiscovered(Src, Region, "bandit", 8);
    expectIdenticalTrajectories(Hand, Auto, "workload #" + std::to_string(I));
  }
}

} // namespace
} // namespace locus
