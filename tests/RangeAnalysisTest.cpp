//===- RangeAnalysisTest.cpp - Symbolic range analysis tests -------------===//
///
/// \file
/// Unit tests for the saturating interval lattice (INT64 extremes, empty
/// intervals, widening) and end-to-end tests for its consumers: the static
/// bounds verifier over the shipped kernel corpus, the seeded off-by-one
/// tile-bound mutation it must catch with a located witness, trip-count
/// refinement in region discovery, and the parameter-interval helpers the
/// legality oracle builds on.
///
//===----------------------------------------------------------------------===//

#include "src/analysis/LegalityOracle.h"
#include "src/analysis/RangeAnalysis.h"
#include "src/analysis/RegionDiscovery.h"
#include "src/cir/Parser.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <climits>

namespace locus {
namespace analysis {
namespace {

//===----------------------------------------------------------------------===//
// Saturating scalar arithmetic at the INT64 extremes
//===----------------------------------------------------------------------===//

TEST(SatArith, AddSaturatesAtBothExtremes) {
  EXPECT_EQ(satAdd(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(satAdd(1, INT64_MAX), INT64_MAX);
  EXPECT_EQ(satAdd(INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(satAdd(INT64_MAX - 1, 1), INT64_MAX); // clamp, not sentinel pass
  EXPECT_EQ(satAdd(3, 4), 7);
  // -inf dominates +inf: the sum of opposite sentinels stays bottom-heavy
  // (a lower bound may only move down, an upper bound only up).
  EXPECT_EQ(satAdd(INT64_MIN, INT64_MAX), INT64_MIN);
}

TEST(SatArith, NegMapsSentinelsToEachOther) {
  EXPECT_EQ(satNeg(INT64_MIN), INT64_MAX);
  EXPECT_EQ(satNeg(INT64_MAX), INT64_MIN);
  EXPECT_EQ(satNeg(-7), 7);
}

TEST(SatArith, SubHandlesExtremes) {
  EXPECT_EQ(satSub(INT64_MIN, 1), INT64_MIN);
  EXPECT_EQ(satSub(INT64_MAX, -1), INT64_MAX);
  EXPECT_EQ(satSub(0, INT64_MIN), INT64_MAX);
  EXPECT_EQ(satSub(10, 3), 7);
}

TEST(SatArith, MulZeroAbsorbsEvenSentinels) {
  EXPECT_EQ(satMul(0, INT64_MAX), 0);
  EXPECT_EQ(satMul(INT64_MIN, 0), 0);
  EXPECT_EQ(satMul(INT64_MAX, -2), INT64_MIN);
  EXPECT_EQ(satMul(INT64_MIN, -2), INT64_MAX);
  EXPECT_EQ(satMul(int64_t(1) << 40, int64_t(1) << 40), INT64_MAX);
  EXPECT_EQ(satMul(-(int64_t(1) << 40), int64_t(1) << 40), INT64_MIN);
  EXPECT_EQ(satMul(-3, 4), -12);
}

//===----------------------------------------------------------------------===//
// Interval lattice
//===----------------------------------------------------------------------===//

TEST(Interval, MakeNormalizesInvertedToEmpty) {
  EXPECT_TRUE(Interval::make(3, 2).Empty);
  EXPECT_FALSE(Interval::make(2, 2).Empty);
  EXPECT_EQ(Interval::point(5), Interval::make(5, 5));
}

TEST(Interval, EmptyIsContainedInEverything) {
  Interval E = Interval::none();
  EXPECT_TRUE(Interval::point(0).contains(E));
  EXPECT_TRUE(Interval::full().contains(E));
  EXPECT_FALSE(E.contains(Interval::point(0))); // the empty set holds nothing
  EXPECT_FALSE(E.containsValue(0));
}

TEST(Interval, ContainmentAndMembership) {
  Interval I = Interval::make(-3, 9);
  EXPECT_TRUE(I.containsValue(-3));
  EXPECT_TRUE(I.containsValue(9));
  EXPECT_FALSE(I.containsValue(10));
  EXPECT_TRUE(Interval::full().contains(I));
  EXPECT_FALSE(I.contains(Interval::full()));
  EXPECT_TRUE(I.contains(Interval::make(0, 9)));
  EXPECT_FALSE(I.contains(Interval::make(0, 10)));
}

TEST(Interval, JoinAndMeet) {
  EXPECT_EQ(join(Interval::make(0, 5), Interval::make(10, 20)),
            Interval::make(0, 20));
  EXPECT_EQ(join(Interval::none(), Interval::make(1, 2)),
            Interval::make(1, 2));
  EXPECT_EQ(meet(Interval::make(0, 5), Interval::make(3, 9)),
            Interval::make(3, 5));
  EXPECT_TRUE(meet(Interval::make(0, 5), Interval::make(6, 9)).Empty);
  EXPECT_TRUE(meet(Interval::none(), Interval::full()).Empty);
}

TEST(Interval, WidenJumpsMovedEndpointsToInfinity) {
  Interval Old = Interval::make(0, 5);
  EXPECT_EQ(widen(Old, Interval::make(0, 6)),
            Interval::make(0, INT64_MAX));
  EXPECT_EQ(widen(Old, Interval::make(-1, 5)),
            Interval::make(INT64_MIN, 5));
  // Stable when the new interval does not grow: widening terminates.
  EXPECT_EQ(widen(Old, Interval::make(1, 4)), Old);
  EXPECT_EQ(widen(Old, Old), Old);
}

TEST(Interval, RangeArithmetic) {
  EXPECT_EQ(rangeAdd(Interval::make(1, 2), Interval::make(10, 20)),
            Interval::make(11, 22));
  EXPECT_EQ(rangeSub(Interval::make(0, 5), Interval::make(1, 3)),
            Interval::make(-3, 4));
  EXPECT_EQ(rangeMul(Interval::make(-2, 3), Interval::make(4, 5)),
            Interval::make(-10, 15));
  EXPECT_EQ(rangeNeg(Interval::make(-2, 7)), Interval::make(-7, 2));
  EXPECT_TRUE(rangeAdd(Interval::none(), Interval::full()).Empty);
  // Saturated endpoints survive arithmetic without wrapping.
  EXPECT_EQ(rangeAdd(Interval::make(0, INT64_MAX), Interval::point(1)),
            Interval::make(1, INT64_MAX));
}

TEST(Interval, RangeDivAndMod) {
  EXPECT_EQ(rangeDiv(Interval::make(10, 21), Interval::point(2)),
            Interval::make(5, 10));
  // A zero-spanning divisor defeats the corner argument.
  EXPECT_TRUE(rangeDiv(Interval::make(10, 20), Interval::make(-1, 1)).isFull());
  EXPECT_EQ(rangeMod(Interval::make(0, 100), Interval::point(8)),
            Interval::make(0, 7));
  EXPECT_EQ(rangeMod(Interval::make(-5, 100), Interval::point(8)),
            Interval::make(-7, 7));
}

TEST(Interval, StrRendersSentinelsAndEmpty) {
  EXPECT_EQ(Interval::make(0, 5).str(), "[0, 5]");
  EXPECT_EQ(Interval::full().str(), "[-inf, +inf]");
  EXPECT_EQ(Interval::make(3, INT64_MAX).str(), "[3, +inf]");
  EXPECT_EQ(Interval::none().str(), "[]");
}

//===----------------------------------------------------------------------===//
// Bounds verification over programs
//===----------------------------------------------------------------------===//

std::unique_ptr<cir::Program> parseOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

TEST(BoundsCheck, ConstantNestProvesClean) {
  auto P = parseOrDie(R"(
double A[8][8];
int main() {
  int i, j;
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      A[i][j] = A[i][j] + 1.0;
}
)");
  BoundsReport R = checkBounds(*P);
  EXPECT_EQ(R.SubscriptsChecked, 4);
  EXPECT_EQ(R.Proven, 4);
  EXPECT_TRUE(R.clean());
}

TEST(BoundsCheck, InclusiveBoundIsALocatedViolation) {
  auto P = parseOrDie(R"(
double A[8];
int main() {
  int i;
  for (i = 0; i <= 8; i++)
    A[i] = 1.0;
}
)");
  BoundsReport R = checkBounds(*P);
  ASSERT_EQ(R.Findings.size(), 1u);
  const SubscriptFinding &F = R.Findings[0];
  EXPECT_EQ(F.K, SubscriptFinding::Kind::Violation);
  EXPECT_FALSE(F.Definite); // most iterations are in bounds
  EXPECT_EQ(F.Array, "A");
  EXPECT_EQ(F.Range, Interval::make(0, 8));
  EXPECT_EQ(F.LoopVar, "i");
  EXPECT_TRUE(F.Loc.valid());
  EXPECT_NE(F.render().find("ranges over [0, 8]"), std::string::npos);
  EXPECT_NE(F.render().find("extent 8"), std::string::npos);
}

TEST(BoundsCheck, ConstantIndexPastExtentIsDefinite) {
  auto P = parseOrDie(R"(
double A[8];
int main() {
  A[8] = 1.0;
}
)");
  BoundsReport R = checkBounds(*P);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].K, SubscriptFinding::Kind::Violation);
  EXPECT_TRUE(R.Findings[0].Definite);
}

TEST(BoundsCheck, SymbolicBoundIsUnprovenAndTerminates) {
  // The bound is a free scalar: the index interval saturates, the verdict
  // is honest ("unproven", not "violation"), and the loop-carried scalar
  // accumulation forces the fixpoint through its widening path.
  auto P = parseOrDie(R"(
double A[8];
int main() {
  int i, n, s;
  s = 0;
  for (i = 0; i < n; i++) {
    s = s + 1;
    A[i] = A[i] + 1.0;
  }
}
)");
  BoundsReport R = checkBounds(*P);
  EXPECT_EQ(R.violations(), 0);
  EXPECT_GT(R.unproven(), 0);
  for (const SubscriptFinding &F : R.Findings) {
    EXPECT_EQ(F.K, SubscriptFinding::Kind::Unproven);
    EXPECT_FALSE(F.Definite);
  }
}

TEST(BoundsCheck, LocalConstBoundRefinesToAProof) {
  // Same loop, but the bound is a locally-initialized scalar: the
  // environment carries n = [40, 40] and the subscripts prove.
  auto P = parseOrDie(R"(
double A[40];
int main() {
  int i;
  int n = 40;
  for (i = 0; i < n; i++)
    A[i] = A[i] + 1.0;
}
)");
  BoundsReport R = checkBounds(*P);
  EXPECT_TRUE(R.clean()) << R.render();
  EXPECT_EQ(R.Proven, 2);
}

TEST(BoundsCheck, NegativeStepLowerBoundIsUnprovenNotProven) {
  // Decreasing induction variable: the analysis only knows i <= init, so
  // the lower endpoint saturates — the access must not be claimed proven.
  auto P = parseOrDie(R"(
double A[100];
int main() {
  int i;
  for (i = 7; i < 100; i += -1)
    A[i] = 1.0;
}
)");
  BoundsReport R = checkBounds(*P);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].K, SubscriptFinding::Kind::Unproven);
  EXPECT_EQ(R.Findings[0].Range.Hi, 7);
  EXPECT_EQ(R.Findings[0].Range.Lo, INT64_MIN);
}

TEST(BoundsCheck, ProvablyEmptyLoopBodyIsProven) {
  // The loop cannot execute, so even an absurd subscript is safe.
  auto P = parseOrDie(R"(
double A[8];
int main() {
  int i;
  for (i = 5; i < 5; i++)
    A[i + 1000] = 1.0;
}
)");
  BoundsReport R = checkBounds(*P);
  EXPECT_TRUE(R.clean()) << R.render();
}

TEST(BoundsCheck, TriangularDependentBoundProves) {
  // trmm's shape: the inner bound is the outer induction variable. Interval
  // propagation resolves k < i against i in [1, N-1].
  auto P = parseOrDie(workloads::polybenchSource("trmm", 16));
  BoundsReport R = checkBounds(*P);
  EXPECT_TRUE(R.clean()) << R.render();
}

TEST(BoundsCheck, BranchesJoinConservatively) {
  auto P = parseOrDie(R"(
double A[8];
int main() {
  int i, k;
  k = 0;
  for (i = 0; i < 8; i++) {
    if (i < 4) {
      k = i + 4;
    } else {
      k = i - 4;
    }
    A[k] = 1.0;
  }
}
)");
  BoundsReport R = checkBounds(*P);
  // k joins to [-4, 11]: a genuine may-violation with finite endpoints.
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].K, SubscriptFinding::Kind::Violation);
  EXPECT_EQ(R.Findings[0].Range, Interval::make(-4, 11));
  EXPECT_FALSE(R.Findings[0].Definite);
}

//===----------------------------------------------------------------------===//
// Kernel corpus: everything shipped proves in bounds
//===----------------------------------------------------------------------===//

TEST(BoundsCheck, AllPolybenchKernelsProveInBounds) {
  for (const std::string &Name : workloads::polybenchKernels()) {
    auto P = parseOrDie(workloads::polybenchSource(Name, 24));
    BoundsReport R = checkBounds(*P);
    EXPECT_TRUE(R.clean()) << Name << ":\n" << R.render();
    EXPECT_GT(R.Proven, 0) << Name;
  }
}

TEST(BoundsCheck, DgemmAndStencilWorkloadsProveInBounds) {
  std::vector<std::string> Sources = {workloads::dgemmSource(16, 16, 16)};
  for (workloads::StencilKind K :
       {workloads::StencilKind::Jacobi2D, workloads::StencilKind::Seidel2D,
        workloads::StencilKind::Heat1D})
    Sources.push_back(workloads::stencilSource(K, 4, 24));
  for (const std::string &Src : Sources) {
    auto P = parseOrDie(Src);
    BoundsReport R = checkBounds(*P);
    EXPECT_TRUE(R.clean()) << R.render();
  }
}

/// Satellite: the seeded off-by-one tile-bound mutation. A hand-tiled dgemm
/// whose intra-tile loop runs one iteration past the tile edge must be
/// rejected with a located witness naming the access and its interval.
TEST(BoundsCheck, SeededTileBoundMutationIsCaught) {
  auto P = parseOrDie(R"(
#define N 16
double A[N][N];
double B[N][N];
double C[N][N];
int main() {
  int it, i, j, k;
#pragma @Locus loop=matmul
  for (it = 0; it < N; it += 4)
    for (i = it; i <= it + 4; i++)
      for (j = 0; j < N; j++)
        for (k = 0; k < N; k++)
          C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
)");
  BoundsReport R = checkBounds(*P);
  EXPECT_GT(R.violations(), 0) << R.render();
  bool Witnessed = false;
  for (const SubscriptFinding &F : R.Findings) {
    if (F.Dim != 0 || F.K != SubscriptFinding::Kind::Violation)
      continue;
    // The tile loop is stride-refined to it in [0, 12], so i runs to
    // it+4 inclusive: [0, 16] against extent 16 — one past the edge.
    EXPECT_EQ(F.Range, Interval::make(0, 16));
    EXPECT_EQ(F.LoopVar, "i");
    EXPECT_EQ(F.Region, "matmul");
    EXPECT_TRUE(F.Loc.valid());
    EXPECT_NE(F.render().find("ranges over [0, 16]"), std::string::npos);
    Witnessed = true;
  }
  EXPECT_TRUE(Witnessed);
  // The corrected bound proves clean again.
  auto Fixed = parseOrDie(R"(
#define N 16
double A[N][N];
double B[N][N];
double C[N][N];
int main() {
  int it, i, j, k;
  for (it = 0; it < N; it += 4)
    for (i = it; i < it + 4; i++)
      for (j = 0; j < N; j++)
        for (k = 0; k < N; k++)
          C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
)");
  EXPECT_TRUE(checkBounds(*Fixed).clean());
}

//===----------------------------------------------------------------------===//
// Consumer helpers: loop ranges, block environments, iteration boxes
//===----------------------------------------------------------------------===//

TEST(RangeEnv, EnvAtBlockAndIterationBox) {
  auto P = parseOrDie(R"(
double A[32][32];
int main() {
  int i, j;
  int n = 32;
#pragma @Locus loop=scop
  for (i = 0; i < n; i++)
    for (j = 0; j < 32; j++)
      A[i][j] = A[i][j] + 1.0;
}
)");
  std::vector<cir::Block *> Regions = P->findRegions("scop");
  ASSERT_EQ(Regions.size(), 1u);
  RangeEnv Base = envAtBlock(*P, Regions[0]);
  ASSERT_TRUE(Base.count("n"));
  EXPECT_EQ(Base.at("n"), Interval::point(32));
  std::map<std::string, Interval> Box = iterationBox(*Regions[0], Base);
  ASSERT_TRUE(Box.count("i"));
  ASSERT_TRUE(Box.count("j"));
  EXPECT_EQ(Box["i"], Interval::make(0, 31));
  EXPECT_EQ(Box["j"], Interval::make(0, 31));
}

TEST(RangeEnv, LoopBoundRangesCoverEveryLoop) {
  auto P = parseOrDie(workloads::polybenchSource("trmm", 16));
  auto Ranges = loopBoundRanges(*P);
  EXPECT_EQ(Ranges.size(), 3u);
  for (const auto &[For, LR] : Ranges) {
    EXPECT_FALSE(LR.Init.Empty) << For->Var;
    EXPECT_FALSE(LR.Limit.Empty) << For->Var;
  }
}

//===----------------------------------------------------------------------===//
// Consumer 3: trip-count refinement in region discovery
//===----------------------------------------------------------------------===//

TEST(TripRefinement, SingletonScalarBoundGivesExactTrips) {
  auto P = parseOrDie(R"(
double A[40][40];
int main() {
  int i, j;
  int n = 40;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] = A[i][j] + 1.0;
}
)");
  DiscoveryReport R = discoverRegions(*P);
  ASSERT_EQ(R.Candidates.size(), 1u);
  EXPECT_EQ(R.Candidates[0].TripProduct, 1600u);
  EXPECT_TRUE(R.Candidates[0].TripExact);
}

TEST(TripRefinement, UnboundedSymbolicBoundKeepsTheFallback) {
  auto P = parseOrDie(R"(
double A[64][64];
int main() {
  int i, j, n;
  for (i = 0; i < n; i++)
    for (j = 0; j < 64; j++)
      A[i][j] = A[i][j] + 1.0;
}
)");
  DiscoveryOptions Opts;
  Opts.SymbolicTrip = 64;
  DiscoveryReport R = discoverRegions(*P, Opts);
  ASSERT_EQ(R.Candidates.size(), 1u);
  EXPECT_EQ(R.Candidates[0].TripProduct, 64u * 64u);
  EXPECT_FALSE(R.Candidates[0].TripExact);
}

TEST(TripRefinement, TriangularBoundGivesABoundedEstimate) {
  auto P = parseOrDie(workloads::polybenchSource("trmm", 16));
  DiscoveryReport R = discoverRegions(*P);
  ASSERT_GE(R.Candidates.size(), 1u);
  const NestCandidate &C = R.Candidates[0];
  // k < i resolves to at most 15 iterations — refined below the default
  // 64-per-level fallback, but honestly inexact.
  EXPECT_LE(C.TripProduct, 15u * 16u * 15u);
  EXPECT_GT(C.TripProduct, 0u);
  EXPECT_FALSE(C.TripExact);
}

//===----------------------------------------------------------------------===//
// Oracle helpers: parameter value intervals
//===----------------------------------------------------------------------===//

search::ParamDef makeParam(search::ParamKind K, int64_t Min, int64_t Max) {
  search::ParamDef P;
  P.Id = "p";
  P.Label = "p";
  P.Kind = K;
  P.Min = Min;
  P.Max = Max;
  return P;
}

TEST(ParamInterval, CoversIntegerKinds) {
  EXPECT_EQ(paramValueInterval(makeParam(search::ParamKind::IntRange, 3, 9)),
            Interval::make(3, 9));
  EXPECT_EQ(paramValueInterval(makeParam(search::ParamKind::Pow2, 2, 64)),
            Interval::make(2, 64));
  EXPECT_EQ(paramValueInterval(makeParam(search::ParamKind::Bool, 0, 1)),
            Interval::make(0, 1));
}

TEST(ParamInterval, Pow2ValuesAreAllPow2) {
  EXPECT_TRUE(paramValuesAllPow2(makeParam(search::ParamKind::Pow2, 2, 64)));
  EXPECT_FALSE(
      paramValuesAllPow2(makeParam(search::ParamKind::IntRange, 2, 5)));
}

} // namespace
} // namespace analysis
} // namespace locus
