//===- DependenceTest.cpp - Dependence analysis unit tests --------------------===//

#include "src/analysis/Affine.h"
#include "src/analysis/Dependence.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace analysis;
using namespace cir;

ForStmt *firstLoop(Program &P, const std::string &Region) {
  auto Regions = P.findRegions(Region);
  EXPECT_EQ(Regions.size(), 1u);
  auto Outer = listOuterLoops(*Regions[0]);
  EXPECT_FALSE(Outer.empty());
  return Outer[0].Loop;
}

std::unique_ptr<Program> parse(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

//===----------------------------------------------------------------------===//
// Affine extraction
//===----------------------------------------------------------------------===//

TEST(Affine, LinearForms) {
  auto P = parse("double A[100]; int n; int main() { int i, j; A[2*i + 3*j - n + 7] = 1.0; }");
  const auto *Assign =
      dyn_cast<AssignStmt>(P->Body->Stmts.back().get());
  ASSERT_NE(Assign, nullptr);
  const auto *Ref = cast<ArrayRef>(Assign->Lhs.get());
  std::optional<AffineExpr> E = toAffine(*Ref->Indices[0]);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->coeff("i"), 2);
  EXPECT_EQ(E->coeff("j"), 3);
  EXPECT_EQ(E->coeff("n"), -1);
  EXPECT_EQ(E->constant(), 7);
}

TEST(Affine, RejectsNonAffine) {
  auto P = parse(
      "double A[100]; int idx[100]; int main() { int i, j; A[i * j] = 1.0; "
      "A[i % 4] = 2.0; A[idx[i]] = 3.0; }");
  for (size_t I = P->Body->Stmts.size() - 3; I < P->Body->Stmts.size(); ++I) {
    const auto *Assign = dyn_cast<AssignStmt>(P->Body->Stmts[I].get());
    ASSERT_NE(Assign, nullptr);
    const auto *Ref = cast<ArrayRef>(Assign->Lhs.get());
    EXPECT_FALSE(toAffine(*Ref->Indices[0]).has_value());
  }
}

TEST(Affine, ArithmeticOnForms) {
  AffineExpr A = AffineExpr::variable("i", 2) + AffineExpr(5);
  AffineExpr B = AffineExpr::variable("i", 2) + AffineExpr::variable("j");
  AffineExpr D = A - B;
  EXPECT_EQ(D.coeff("i"), 0);
  EXPECT_EQ(D.coeff("j"), -1);
  EXPECT_EQ(D.constant(), 5);
  EXPECT_TRUE(AffineExpr(4).isConstant());
  EXPECT_EQ(A.scaled(3).coeff("i"), 6);
}

//===----------------------------------------------------------------------===//
// Dependence tests
//===----------------------------------------------------------------------===//

TEST(Dependence, ZivIndependence) {
  auto P = parse(R"(
double A[10][10];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++) {
    A[0][i] = 1.0;
    A[1][i] = A[0][i] + 2.0;
  }
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  // Only the flow A[0][i] -> read A[0][i] at '=' remains; the two writes to
  // rows 0 and 1 are ZIV-independent.
  for (const Dependence &D : Deps->deps()) {
    EXPECT_EQ(D.Kind, DepKind::Flow);
    EXPECT_EQ(D.Dirs, std::vector<char>{'='});
  }
  EXPECT_FALSE(Deps->deps().empty());
}

TEST(Dependence, StrongSivDistance) {
  auto P = parse(R"(
double A[32];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 4; i < 32; i++)
    A[i] = A[i - 4] * 0.5;
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  bool FoundCarried = false;
  for (const Dependence &D : Deps->deps())
    if (D.Kind == DepKind::Flow && D.Dirs == std::vector<char>{'<'})
      FoundCarried = true;
  EXPECT_TRUE(FoundCarried);
}

TEST(Dependence, NonIntegerDistanceMeansIndependent) {
  auto P = parse(R"(
double A[64];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 30; i++)
    A[2 * i] = A[2 * i + 1] + 1.0;
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  // 2i = 2i' + 1 has no integer solution: no cross dependence; only the
  // trivially-empty set remains.
  for (const Dependence &D : Deps->deps())
    EXPECT_NE(D.Kind, DepKind::Flow);
}

TEST(Dependence, GcdTestProvesIndependence) {
  auto P = parse(R"(
double A[64];
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 0; i < 8; i++)
    for (j = 0; j < 4; j++)
      A[4 * i + 2 * j] = A[4 * i + 2 * j + 1] + 1.0;
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  for (const Dependence &D : Deps->deps())
    EXPECT_NE(D.Kind, DepKind::Flow); // gcd(4,2) does not divide 1
}

TEST(Dependence, UnavailableForIndirectAndConditionals) {
  auto Indirect = parse(R"(
double A[16]; int idx[16];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++)
    A[idx[i]] = 1.0;
}
)");
  EXPECT_FALSE(DependenceInfo::compute(*firstLoop(*Indirect, "r")).has_value());

  auto Conditional = parse(R"(
double A[16];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++)
    if (i % 2 == 0) {
      A[i] = 1.0;
    }
}
)");
  EXPECT_FALSE(
      DependenceInfo::compute(*firstLoop(*Conditional, "r")).has_value());
}

TEST(Dependence, DeclaredTemporarySubscriptIsNotAffine) {
  // Kripke-style address temporaries: the subscript reads a scalar defined
  // inside the nest, so exact analysis must bail out.
  auto P = parse(R"(
double A[64];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 8; i++) {
    int k = i * 8;
    A[k] = A[k] + 1.0;
  }
}
)");
  EXPECT_FALSE(DependenceInfo::compute(*firstLoop(*P, "r")).has_value());
}

TEST(Dependence, InterchangeLegalityMatrix) {
  // Classic wavefront: direction vector ('<', '>') forbids the swap.
  auto Wave = parse(R"(
double A[16][16];
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 1; i < 16; i++)
    for (j = 0; j < 15; j++)
      A[i][j] = A[i - 1][j + 1] + 1.0;
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*Wave, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_TRUE(Deps->interchangeLegal({0, 1}));
  EXPECT_FALSE(Deps->interchangeLegal({1, 0}));
  EXPECT_FALSE(Deps->tilingLegal(0, 1));
  EXPECT_FALSE(Deps->unrollAndJamLegal(0));

  // Forward-only distances permit everything.
  auto Down = parse(R"(
double A[16][16];
int main() {
  int i, j;
#pragma @Locus loop=r
  for (i = 1; i < 16; i++)
    for (j = 1; j < 16; j++)
      A[i][j] = A[i - 1][j - 1] + 1.0;
}
)");
  auto Deps2 = DependenceInfo::compute(*firstLoop(*Down, "r"));
  ASSERT_TRUE(Deps2.has_value());
  EXPECT_TRUE(Deps2->interchangeLegal({1, 0}));
  EXPECT_TRUE(Deps2->tilingLegal(0, 1));
  EXPECT_TRUE(Deps2->unrollAndJamLegal(0));
}

TEST(Dependence, ReductionScalarMakesLoopSerial) {
  auto P = parse(R"(
double A[16];
double s;
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++)
    s = s + A[i];
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  bool ScalarCarried = false;
  for (const Dependence &D : Deps->deps())
    if (D.IsScalar && D.mayBeCarriedBy(0))
      ScalarCarried = true;
  EXPECT_TRUE(ScalarCarried);
}

TEST(Dependence, StmtGraphOrdersProducersBeforeConsumers) {
  auto P = parse(R"(
double A[16];
double B[16];
double C[16];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++) {
    A[i] = C[i] * 2.0;
    B[i] = A[i] + 1.0;
  }
}
)");
  ForStmt *Loop = firstLoop(*P, "r");
  auto Deps = DependenceInfo::compute(*Loop);
  ASSERT_TRUE(Deps.has_value());
  auto Graph = Deps->stmtGraph(*Loop);
  ASSERT_EQ(Graph.size(), 2u);
  ASSERT_EQ(Graph[0].size(), 1u);
  EXPECT_EQ(Graph[0][0], 1); // A's definition feeds B's statement
  EXPECT_TRUE(Deps->distributionLegal(*Loop));
}

//===----------------------------------------------------------------------===//
// Weak SIV and symbolic subscripts (previously classified '*')
//===----------------------------------------------------------------------===//

/// True when any dependence connects an access to array \p Name.
bool hasDepOn(const DependenceInfo &Deps, const std::string &Name) {
  for (const Dependence &D : Deps.deps())
    if (D.Array == Name)
      return true;
  return false;
}

TEST(Dependence, WeakZeroSivProvesIndependence) {
  // Write A[5] vs read A[i + 20]: the weak-zero test solves i = 5 - 20,
  // outside [0, 9], so the pair is independent (before this test it was a
  // conservative '*' dependence).
  auto P = parse(R"(
double A[64];
double B[16];
double C[16];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++) {
    A[5] = B[i];
    C[i] = A[i + 20];
  }
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_FALSE(hasDepOn(*Deps, "A"));
}

TEST(Dependence, WeakZeroSivKeepsRealDependence) {
  // Control: A[i + 2] does hit the constant write when i = 3.
  auto P = parse(R"(
double A[64];
double B[16];
double C[16];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++) {
    A[5] = B[i];
    C[i] = A[i + 2];
  }
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_TRUE(hasDepOn(*Deps, "A"));
}

TEST(Dependence, WeakCrossingSivProvesIndependence) {
  // A[i] vs A[19 - i]: crossing point at i = 9.5; with i in [0, 9] the sum
  // constraint 19 > 2*9 means the accesses never meet.
  auto P = parse(R"(
double A[32];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++)
    A[i] = A[19 - i] + 1.0;
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_FALSE(hasDepOn(*Deps, "A"));
}

TEST(Dependence, WeakCrossingSivKeepsRealDependence) {
  // Control: A[i] vs A[15 - i] cross inside the iteration space (i = 7.5
  // between iterations 7 and 8).
  auto P = parse(R"(
double A[32];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 10; i++)
    A[i] = A[15 - i] + 1.0;
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_TRUE(hasDepOn(*Deps, "A"));
}

TEST(Dependence, MismatchedSymbolicPartsUseGcd) {
  // A[2i + 2M] vs A[2i + 1]: the symbolic parts differ by 2M - 1, which is
  // odd for every M while the induction coefficients are even — the
  // symbolic GCD test proves independence without knowing M.
  auto P = parse(R"(
double A[256];
double B[64];
int M;
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++) {
    A[2 * i + 2 * M] = 1.0;
    B[i] = A[2 * i + 1];
  }
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_FALSE(hasDepOn(*Deps, "A"));
}

TEST(Dependence, MismatchedSymbolicPartsKeepPossibleDependence) {
  // Control: A[2i + 4] vs A[2i + 1]... both even coefficients but the
  // constant difference is odd -> independent; whereas A[2i + 4] vs
  // A[2i + 2] shares parity -> the dependence must survive.
  auto P = parse(R"(
double A[256];
double B[64];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++) {
    A[2 * i + 4] = 1.0;
    B[i] = A[2 * i + 2];
  }
}
)");
  auto Deps = DependenceInfo::compute(*firstLoop(*P, "r"));
  ASSERT_TRUE(Deps.has_value());
  EXPECT_TRUE(hasDepOn(*Deps, "A"));
}

TEST(Dependence, WhyNotDiagnosticIsLocated) {
  auto P = parse(R"(
double A[16];
int idx[16];
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < 16; i++)
    A[idx[i]] = 1.0;
}
)");
  support::Diag Why;
  EXPECT_FALSE(DependenceInfo::compute(*firstLoop(*P, "r"), &Why).has_value());
  EXPECT_FALSE(Why.Message.empty());
  EXPECT_TRUE(Why.Loc.valid()) << Why.render();
}

} // namespace
} // namespace locus
