//===- EvaluatorTest.cpp - Machine model and evaluator tests ------------------===//

#include "src/cir/Parser.h"
#include "src/eval/Evaluator.h"
#include "src/machine/CacheSim.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

using namespace eval;

std::unique_ptr<cir::Program> parseCOrDie(const std::string &Src) {
  auto P = cir::parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

//===----------------------------------------------------------------------===//
// Cache simulator
//===----------------------------------------------------------------------===//

TEST(CacheSim, HitsAfterFill) {
  machine::MachineConfig M = machine::MachineConfig::tiny();
  machine::CacheSim Cache(M);
  int First = Cache.access(0x1000, false);
  int Second = Cache.access(0x1000, false);
  EXPECT_GT(First, Second);
  EXPECT_EQ(Second, M.Levels[0].HitLatency);
  EXPECT_EQ(Cache.stats()[0].Hits, 1u);
  EXPECT_EQ(Cache.stats()[0].Misses, 1u);
}

TEST(CacheSim, SameLineSharesFill) {
  machine::CacheSim Cache(machine::MachineConfig::tiny());
  Cache.access(0x1000, false);
  int Next = Cache.access(0x1008, false); // same 64-byte line
  EXPECT_EQ(Next, machine::MachineConfig::tiny().Levels[0].HitLatency);
}

TEST(CacheSim, CapacityEviction) {
  machine::MachineConfig M = machine::MachineConfig::tiny(); // 1 KB L1
  machine::CacheSim Cache(M);
  // Touch 4 KB then re-touch the first line: must miss in L1, hit in L2.
  for (uint64_t A = 0; A < 4096; A += 64)
    Cache.access(A, false);
  uint64_t L1MissesBefore = Cache.stats()[0].Misses;
  Cache.access(0, false);
  EXPECT_EQ(Cache.stats()[0].Misses, L1MissesBefore + 1);
  EXPECT_GE(Cache.stats()[1].Hits, 1u);
}

TEST(CacheSim, ResetClearsState) {
  machine::CacheSim Cache(machine::MachineConfig::tiny());
  Cache.access(0x40, false);
  Cache.reset();
  EXPECT_EQ(Cache.stats()[0].Hits, 0u);
  int Latency = Cache.access(0x40, false);
  EXPECT_GT(Latency, machine::MachineConfig::tiny().Levels[0].HitLatency);
}

//===----------------------------------------------------------------------===//
// Semantics
//===----------------------------------------------------------------------===//

TEST(Evaluator, ComputesKnownValues) {
  const char *Src = R"(
double A[4];
double B[4];
int main() {
  int i;
  for (i = 0; i < 4; i++)
    B[i] = A[i] * 2.0 + 1.0;
}
)";
  auto P = parseCOrDie(Src);
  EvalOptions Opts;
  Opts.CountCost = false;
  ProgramEvaluator E(*P, Opts);
  ASSERT_TRUE(E.prepare().ok());
  ASSERT_TRUE(E.setDoubleArray("A", {1.0, 2.0, 3.0, 4.0}).ok());
  RunResult R = E.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  auto B = E.doubleArray("B");
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(*B, (std::vector<double>{3.0, 5.0, 7.0, 9.0}));
  EXPECT_EQ(R.LoopIterations, 4u);
}

TEST(Evaluator, IntegerSemanticsAndModulo) {
  const char *Src = R"(
int out[6];
int main() {
  int i;
  for (i = 0; i < 6; i++)
    out[i] = (i * 7 + 3) % 5 - 7 / 2;
}
)";
  auto P = parseCOrDie(Src);
  EvalOptions Opts;
  Opts.CountCost = false;
  ProgramEvaluator E(*P, Opts);
  ASSERT_TRUE(E.prepare().ok());
  RunResult R = E.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  // (3,10,17,24,31,38)%5 = 3,0,2,4,1,3; minus 3.
  EXPECT_EQ(R.Checksum, 3 + 0 + 2 + 4 + 1 + 3 - 6 * 3);
}

TEST(Evaluator, BoundsCheckingReportsArray) {
  const char *Src = R"(
double A[4];
int main() {
  int i;
  for (i = 0; i < 8; i++)
    A[i] = 1.0;
}
)";
  auto P = parseCOrDie(Src);
  RunResult R = evaluateProgram(*P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds for A"), std::string::npos) << R.Error;
}

TEST(Evaluator, UnknownCallIsCompileError) {
  auto P = parseCOrDie("int main() { mystery(); }");
  ProgramEvaluator E(*P, EvalOptions());
  Status S = E.prepare();
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("mystery"), std::string::npos);
}

TEST(Evaluator, IterationBudgetGuard) {
  const char *Src = R"(
double A[2];
int main() {
  int i, j;
  for (i = 0; i < 10000; i++)
    for (j = 0; j < 10000; j++)
      A[0] = A[0] + 1.0;
}
)";
  auto P = parseCOrDie(Src);
  EvalOptions Opts;
  Opts.MaxIterations = 1000;
  ProgramEvaluator E(*P, Opts);
  ASSERT_TRUE(E.prepare().ok());
  RunResult R = E.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(Evaluator, RunsAreRepeatable) {
  const char *Src = R"(
double A[32];
int main() {
  int i;
  for (i = 1; i < 32; i++)
    A[i] = A[i - 1] * 0.5 + A[i];
}
)";
  auto P = parseCOrDie(Src);
  ProgramEvaluator E(*P, EvalOptions());
  ASSERT_TRUE(E.prepare().ok());
  RunResult R1 = E.run();
  RunResult R2 = E.run();
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.Checksum, R2.Checksum);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
}

//===----------------------------------------------------------------------===//
// Cost model behaviour
//===----------------------------------------------------------------------===//

std::string transposedTraversal(bool RowMajor) {
  std::string Body = RowMajor ? "A[i][j] = A[i][j] + 1.0;"
                              : "A[j][i] = A[j][i] + 1.0;";
  return std::string(R"(
#define N 64
double A[N][N];
int main() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      )") + Body + "\n}\n";
}

TEST(CostModel, RowMajorTraversalIsCheaper) {
  auto Row = parseCOrDie(transposedTraversal(true));
  auto Col = parseCOrDie(transposedTraversal(false));
  EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::tiny();
  RunResult RRow = evaluateProgram(*Row, Opts);
  RunResult RCol = evaluateProgram(*Col, Opts);
  ASSERT_TRUE(RRow.Ok && RCol.Ok);
  EXPECT_LT(RRow.Cycles * 1.5, RCol.Cycles)
      << "row " << RRow.Cycles << " col " << RCol.Cycles;
}

TEST(CostModel, ParallelForReducesCycles) {
  const char *Body = R"(
#define N 256
double A[N][N];
int main() {
  int i, j;
%PRAGMA%
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = A[i][j] * 1.5 + 2.0;
}
)";
  std::string Seq(Body), Par(Body);
  Seq.replace(Seq.find("%PRAGMA%"), 8, "");
  Par.replace(Par.find("%PRAGMA%"), 8, "#pragma omp parallel for");
  auto PSeq = parseCOrDie(Seq);
  auto PPar = parseCOrDie(Par);
  EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::tiny(); // 4 cores
  RunResult RSeq = evaluateProgram(*PSeq, Opts);
  RunResult RPar = evaluateProgram(*PPar, Opts);
  ASSERT_TRUE(RSeq.Ok && RPar.Ok);
  EXPECT_EQ(RSeq.Checksum, RPar.Checksum);
  EXPECT_GT(RSeq.Cycles / RPar.Cycles, 2.5);
  EXPECT_LT(RSeq.Cycles / RPar.Cycles, 4.5);
}

TEST(CostModel, DynamicScheduleHelpsImbalance) {
  // Triangular inner loop: contiguous static chunks are imbalanced.
  const char *Body = R"(
#define N 128
double A[N][N];
int main() {
  int i, j;
#pragma omp parallel for %SCHED%
  for (i = 0; i < N; i++)
    for (j = 0; j <= i; j++)
      A[i][j] = A[i][j] + 1.0;
}
)";
  std::string Static(Body), Dynamic(Body);
  Static.replace(Static.find("%SCHED%"), 7, "");
  Dynamic.replace(Dynamic.find("%SCHED%"), 7, "schedule(dynamic,4)");
  auto PStatic = parseCOrDie(Static);
  auto PDynamic = parseCOrDie(Dynamic);
  EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::tiny();
  RunResult RS = evaluateProgram(*PStatic, Opts);
  RunResult RD = evaluateProgram(*PDynamic, Opts);
  ASSERT_TRUE(RS.Ok && RD.Ok);
  EXPECT_LT(RD.Cycles, RS.Cycles);
}

TEST(CostModel, IvdepUnlocksUnprovableLoops) {
  // Indirect subscripts defeat the dependence analyzer, so the compiler
  // model stays scalar unless the programmer asserts independence (the
  // paper's ICC ivdep / vector always usage).
  const char *Body = R"(
#define N 512
double A[N];
double B[N];
int idx[N];
int main() {
  int i, r;
  for (r = 0; r < 8; r++) {
%PRAGMA%
    for (i = 0; i < N; i++)
      A[i] = A[i] * 0.5 + B[idx[i]] * 0.25 + 0.001;
  }
}
)";
  std::string Plain(Body), Vec(Body);
  Plain.replace(Plain.find("%PRAGMA%"), 8, "");
  Vec.replace(Vec.find("%PRAGMA%"), 8, "#pragma ivdep\n#pragma vector always");
  auto PPlain = parseCOrDie(Plain);
  auto PVec = parseCOrDie(Vec);
  EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::xeonE5v3();
  RunResult RPlain = evaluateProgram(*PPlain, Opts);
  RunResult RVec = evaluateProgram(*PVec, Opts);
  ASSERT_TRUE(RPlain.Ok && RVec.Ok);
  EXPECT_EQ(RPlain.Checksum, RVec.Checksum);
  EXPECT_GT(RPlain.Cycles / RVec.Cycles, 1.2);
}

TEST(CostModel, AutoVectorizationOfProvenIndependentLoops) {
  // A provably independent unit-stride loop vectorizes with no pragma at
  // all, so adding one changes nothing.
  const char *Body = R"(
#define N 512
double A[N];
double B[N];
int main() {
  int i, r;
  for (r = 0; r < 8; r++) {
%PRAGMA%
    for (i = 0; i < N; i++)
      A[i] = A[i] * 0.5 + B[i] * B[i] + 0.001;
  }
}
)";
  std::string Plain(Body), Vec(Body);
  Plain.replace(Plain.find("%PRAGMA%"), 8, "");
  Vec.replace(Vec.find("%PRAGMA%"), 8, "#pragma ivdep\n#pragma vector always");
  auto PPlain = parseCOrDie(Plain);
  auto PVec = parseCOrDie(Vec);
  EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::xeonE5v3();
  RunResult RPlain = evaluateProgram(*PPlain, Opts);
  RunResult RVec = evaluateProgram(*PVec, Opts);
  ASSERT_TRUE(RPlain.Ok && RVec.Ok);
  EXPECT_DOUBLE_EQ(RPlain.Cycles, RVec.Cycles);
}

TEST(CostModel, ProvenDependenceDefeatsIvdep) {
  // Seidel-style carried dependence: the pragma must not yield a speedup.
  const char *Body = R"(
#define N 512
double A[N + 2];
int main() {
  int i, r;
  for (r = 0; r < 8; r++) {
%PRAGMA%
    for (i = 1; i < N + 1; i++)
      A[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
  }
}
)";
  std::string Plain(Body), Vec(Body);
  Plain.replace(Plain.find("%PRAGMA%"), 8, "");
  Vec.replace(Vec.find("%PRAGMA%"), 8, "#pragma ivdep\n#pragma vector always");
  auto PPlain = parseCOrDie(Plain);
  auto PVec = parseCOrDie(Vec);
  EvalOptions Opts;
  RunResult RPlain = evaluateProgram(*PPlain, Opts);
  RunResult RVec = evaluateProgram(*PVec, Opts);
  ASSERT_TRUE(RPlain.Ok && RVec.Ok);
  EXPECT_DOUBLE_EQ(RPlain.Cycles, RVec.Cycles);
}

TEST(CostModel, CountCostOffIsFasterPath) {
  auto P = parseCOrDie(transposedTraversal(true));
  EvalOptions NoCost;
  NoCost.CountCost = false;
  RunResult R = evaluateProgram(*P, NoCost);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Cycles, 0.0);
  EXPECT_TRUE(R.Cache.empty());
}

} // namespace
} // namespace locus
