//===- ParallelSafetyTest.cpp - Race detection & classification tests --------===//
///
/// \file
/// Exercises the parallel-safety analyzer: known-racy kernels must produce a
/// located witness, known-safe kernels (including transformed ones) must be
/// proven safe, reductions must be recognized for all four operators, and
/// the classification must be stable under an unparse/reparse round trip.
/// Also covers the applyOmpFor race gate, the snippet-file gate, pragma
/// idempotency, the simulator's refusal to model unproven speedup, and the
/// native emitter's clause annotation.
///
//===----------------------------------------------------------------------===//

#include "src/analysis/ParallelSafety.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/PathIndex.h"
#include "src/cir/Printer.h"
#include "src/eval/Evaluator.h"
#include "src/eval/NativeEvaluator.h"
#include "src/transform/AltdescPragmas.h"
#include "src/transform/Interchange.h"
#include "src/transform/Tiling.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace locus {
namespace {

using namespace cir;
using namespace analysis;

std::unique_ptr<Program> parseOrDie(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(P.ok()) << P.message();
  return P.ok() ? std::move(*P) : nullptr;
}

/// The first (outermost) loop of region \p Name.
const ForStmt *outerLoop(const Program &P, const std::string &Name) {
  auto Regions = P.findRegions(Name);
  EXPECT_FALSE(Regions.empty());
  if (Regions.empty())
    return nullptr;
  for (const StmtPtr &S : Regions[0]->Stmts)
    if (const auto *For = dyn_cast<ForStmt>(S.get()))
      return For;
  ADD_FAILURE() << "region has no loop";
  return nullptr;
}

const VarInfo *findVar(const ParallelSafetyReport &Rep, const std::string &N) {
  for (const VarInfo &V : Rep.Vars)
    if (V.Name == N)
      return &V;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Known-racy kernels
//===----------------------------------------------------------------------===//

TEST(ParallelSafety, LoopCarriedFlowIsRacyWithWitness) {
  auto P = parseOrDie(R"(
#define N 32
double V[N];
int main() {
  int i;
#pragma @Locus loop=scan
  for (i = 1; i < N; i++)
    V[i] = V[i - 1] + 1.0;
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "scan"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Racy);
  ASSERT_FALSE(Rep.Witnesses.empty());
  const RaceWitness &W = Rep.Witnesses.front();
  EXPECT_EQ(W.Var, "V");
  EXPECT_EQ(W.Kind, DepKind::Flow);
  EXPECT_TRUE(W.SrcLoc.valid());
  EXPECT_NE(W.render().find("line"), std::string::npos);
  const VarInfo *V = findVar(Rep, "V");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Class, VarClass::Racy);
}

TEST(ParallelSafety, SeidelStencilBothDimsRacy) {
  // Gauss-Seidel in-place update: flow dependences carried by both i and j.
  auto P = parseOrDie(R"(
#define N 16
double A[N][N];
int main() {
  int i, j;
#pragma @Locus loop=seidel
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      A[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) * 0.25;
}
)");
  const ForStmt *I = outerLoop(*P, "seidel");
  ParallelSafetyReport RepI = analyzeParallelLoop(*I);
  EXPECT_EQ(RepI.Verdict, ParallelVerdict::Racy);
  EXPECT_FALSE(RepI.Witnesses.empty());
  const auto *J = dyn_cast<ForStmt>(I->Body->Stmts[0].get());
  ASSERT_NE(J, nullptr);
  ParallelSafetyReport RepJ = analyzeParallelLoop(*J);
  EXPECT_EQ(RepJ.Verdict, ParallelVerdict::Racy);
}

TEST(ParallelSafety, SharedScalarWithoutReductionFormIsRacy) {
  // `s = 2.0 * s + A[i]` reads the shared accumulator before writing it,
  // but the update is not an `s = s + e` chain (s carries a coefficient),
  // so no reduction clause can fix it: two iterations conflict on s.
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double s;
int main() {
  int i;
#pragma @Locus loop=horner
  for (i = 0; i < N; i++)
    s = 2.0 * s + A[i];
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "horner"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Racy);
  const VarInfo *S = findVar(Rep, "s");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Class, VarClass::Racy);
  ASSERT_FALSE(Rep.Witnesses.empty());
  EXPECT_TRUE(Rep.Witnesses.front().IsScalar);
}

TEST(ParallelSafety, NonChainScalarUpdateIsRacy) {
  // s = s - s * A[i]: s appears twice on the RHS, not a reduction chain.
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double s;
int main() {
  int i;
#pragma @Locus loop=upd
  for (i = 0; i < N; i++)
    s = s - s * A[i];
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "upd"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Racy);
  const VarInfo *S = findVar(Rep, "s");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Class, VarClass::Racy);
}

//===----------------------------------------------------------------------===//
// Known-safe kernels
//===----------------------------------------------------------------------===//

const char *MatmulSrc = R"(
#define N 16
double A[N][N];
double B[N][N];
double C[N][N];
int main() {
  int i, j, k;
#pragma @Locus loop=mm
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
)";

TEST(ParallelSafety, MatmulOuterLoopIsSafe) {
  auto P = parseOrDie(MatmulSrc);
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "mm"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Safe);
  EXPECT_TRUE(Rep.Witnesses.empty());
  const VarInfo *A = findVar(Rep, "A");
  const VarInfo *C = findVar(Rep, "C");
  const VarInfo *K = findVar(Rep, "k");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(C, nullptr);
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(A->Class, VarClass::SharedReadOnly);
  EXPECT_EQ(C->Class, VarClass::Shared);
  EXPECT_EQ(K->Class, VarClass::Private);
  // Inner indices must appear in the clause string; the parallel index
  // must not (OpenMP privatizes it).
  std::string Clauses = Rep.clauses();
  EXPECT_NE(Clauses.find("private("), std::string::npos);
  EXPECT_NE(Clauses.find("j"), std::string::npos);
  EXPECT_NE(Clauses.find("k"), std::string::npos);
}

TEST(ParallelSafety, PrivatizableTemporaryIsSafe) {
  // `t` is written before read every iteration; privatization removes the
  // apparent conflict.
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double B[N];
double t;
int main() {
  int i;
#pragma @Locus loop=tmp
  for (i = 0; i < N; i++) {
    t = A[i] * 2.0;
    B[i] = t + 1.0;
  }
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "tmp"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Safe);
  const VarInfo *T = findVar(Rep, "t");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Class, VarClass::Private);
  EXPECT_NE(Rep.clauses().find("private("), std::string::npos);
}

TEST(ParallelSafety, ReadOnlyScalarIsFirstPrivate) {
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double alpha;
int main() {
  int i;
#pragma @Locus loop=scale
  for (i = 0; i < N; i++)
    A[i] = A[i] * alpha;
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "scale"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Safe);
  const VarInfo *Al = findVar(Rep, "alpha");
  ASSERT_NE(Al, nullptr);
  EXPECT_EQ(Al->Class, VarClass::FirstPrivate);
  EXPECT_NE(Rep.clauses().find("firstprivate(alpha)"), std::string::npos);
}

TEST(ParallelSafety, TiledMatmulTileLoopIsSafe) {
  // Tiling introduces tile-index variables that appear in no subscript; the
  // analyzer must refine the resulting '*' directions through the tile
  // window instead of reporting a spurious race.
  auto P = parseOrDie(MatmulSrc);
  Block *Region = P->findRegions("mm")[0];
  transform::TransformContext Ctx;
  transform::InterchangeArgs Inter;
  Inter.Order = {0, 2, 1};
  ASSERT_TRUE(transform::applyInterchange(*Region, Inter, Ctx).succeeded());
  transform::TilingArgs T;
  T.Factors = {4, 4, 4};
  ASSERT_TRUE(transform::applyTiling(*Region, T, Ctx).succeeded());
  const ForStmt *Tile = outerLoop(*P, "mm");
  ParallelSafetyReport Rep = analyzeParallelLoop(*Tile);
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Safe) << Rep.summary();
}

//===----------------------------------------------------------------------===//
// Reduction recognition
//===----------------------------------------------------------------------===//

ParallelVerdict classifyReduction(const std::string &Body, RedOp Expect,
                                  const char *Decl = "double s;") {
  std::string Src = std::string("#define N 32\ndouble A[N];\n") + Decl +
                    R"(
int main() {
  int i;
#pragma @Locus loop=r
  for (i = 0; i < N; i++)
    )" + Body + "\n}\n";
  auto P = parseOrDie(Src);
  if (!P)
    return ParallelVerdict::Unknown;
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "r"));
  const VarInfo *S = findVar(Rep, "s");
  EXPECT_NE(S, nullptr) << Body;
  if (S) {
    EXPECT_EQ(S->Class, VarClass::Reduction) << Body << ": " << S->Why;
    if (S->Class == VarClass::Reduction) {
      EXPECT_TRUE(S->Reduction.has_value());
      if (S->Reduction) {
        EXPECT_EQ(*S->Reduction, Expect) << Body;
      }
    }
  }
  return Rep.Verdict;
}

TEST(ParallelSafety, RecognizesAddReduction) {
  EXPECT_EQ(classifyReduction("s += A[i];", RedOp::Add), ParallelVerdict::Safe);
  EXPECT_EQ(classifyReduction("s = s + A[i];", RedOp::Add),
            ParallelVerdict::Safe);
  EXPECT_EQ(classifyReduction("s = A[i] + s;", RedOp::Add),
            ParallelVerdict::Safe);
  EXPECT_EQ(classifyReduction("s = s - A[i];", RedOp::Add),
            ParallelVerdict::Safe);
}

TEST(ParallelSafety, RecognizesMulReduction) {
  EXPECT_EQ(classifyReduction("s *= A[i];", RedOp::Mul), ParallelVerdict::Safe);
  EXPECT_EQ(classifyReduction("s = s * A[i];", RedOp::Mul),
            ParallelVerdict::Safe);
}

TEST(ParallelSafety, RecognizesMinMaxReduction) {
  EXPECT_EQ(classifyReduction("s = min(s, A[i]);", RedOp::Min),
            ParallelVerdict::Safe);
  EXPECT_EQ(classifyReduction("s = max(s, A[i]);", RedOp::Max),
            ParallelVerdict::Safe);
  EXPECT_EQ(classifyReduction("s = max(max(s, A[i]), 0.0);", RedOp::Max),
            ParallelVerdict::Safe);
}

TEST(ParallelSafety, ReductionClauseEmitted) {
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double s;
int main() {
  int i;
#pragma @Locus loop=dot
  for (i = 0; i < N; i++)
    s = s + A[i] * A[i];
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "dot"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Safe);
  EXPECT_NE(Rep.clauses().find("reduction(+:s)"), std::string::npos);
}

TEST(ParallelSafety, MixedOperatorsAreNotAReduction) {
  // One += and one *= on the same scalar: no single combining operator.
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double s;
int main() {
  int i;
#pragma @Locus loop=mix
  for (i = 0; i < N; i++) {
    s = s + A[i];
    s = s * 2.0;
  }
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "mix"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Racy);
}

TEST(ParallelSafety, ReductionReadElsewhereDisqualifies) {
  // Reading the accumulator outside its update chain exposes the partial
  // value, so the reduction transformation is not applicable.
  auto P = parseOrDie(R"(
#define N 32
double A[N];
double B[N];
double s;
int main() {
  int i;
#pragma @Locus loop=leak
  for (i = 0; i < N; i++) {
    s = s + A[i];
    B[i] = s;
  }
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "leak"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Racy);
}

//===----------------------------------------------------------------------===//
// Unknown verdicts
//===----------------------------------------------------------------------===//

TEST(ParallelSafety, NonAffineSubscriptIsUnknownNotSafe) {
  auto P = parseOrDie(R"(
#define N 32
double A[N];
int IDX[N];
int main() {
  int i;
#pragma @Locus loop=gather
  for (i = 0; i < N; i++)
    A[IDX[i]] = 1.0;
}
)");
  ParallelSafetyReport Rep = analyzeParallelLoop(*outerLoop(*P, "gather"));
  EXPECT_EQ(Rep.Verdict, ParallelVerdict::Unknown);
  EXPECT_FALSE(Rep.WhyUnknown.empty());
}

//===----------------------------------------------------------------------===//
// Round-trip stability (property)
//===----------------------------------------------------------------------===//

TEST(ParallelSafety, ClassificationStableUnderRoundTrip) {
  const char *Kernels[] = {
      MatmulSrc,
      R"(
#define N 32
double V[N];
int main() {
  int i;
#pragma @Locus loop=scan
  for (i = 1; i < N; i++)
    V[i] = V[i - 1] + 1.0;
}
)",
      R"(
#define N 32
double A[N];
double s;
int main() {
  int i;
#pragma @Locus loop=dot
  for (i = 0; i < N; i++)
    s = s + A[i] * A[i];
}
)"};
  for (const char *Src : Kernels) {
    auto P1 = parseOrDie(Src);
    auto P2 = parseOrDie(printProgram(*P1));
    const std::string Region = P1->regionNames()[0];
    ParallelSafetyReport R1 = analyzeParallelLoop(*outerLoop(*P1, Region));
    ParallelSafetyReport R2 = analyzeParallelLoop(*outerLoop(*P2, Region));
    // Source locations legitimately shift across an unparse/reparse cycle;
    // everything else must be bit-identical.
    EXPECT_EQ(R1.Verdict, R2.Verdict) << Src;
    EXPECT_EQ(R1.clauses(), R2.clauses()) << Src;
    ASSERT_EQ(R1.Vars.size(), R2.Vars.size()) << Src;
    for (size_t I = 0; I < R1.Vars.size(); ++I) {
      EXPECT_EQ(R1.Vars[I].Name, R2.Vars[I].Name);
      EXPECT_EQ(R1.Vars[I].Class, R2.Vars[I].Class);
      EXPECT_EQ(R1.Vars[I].Reduction, R2.Vars[I].Reduction);
    }
    ASSERT_EQ(R1.Witnesses.size(), R2.Witnesses.size()) << Src;
    for (size_t I = 0; I < R1.Witnesses.size(); ++I) {
      EXPECT_EQ(R1.Witnesses[I].Var, R2.Witnesses[I].Var);
      EXPECT_EQ(R1.Witnesses[I].Kind, R2.Witnesses[I].Kind);
      EXPECT_EQ(R1.Witnesses[I].Dirs, R2.Witnesses[I].Dirs);
    }
  }
}

//===----------------------------------------------------------------------===//
// The applyOmpFor race gate
//===----------------------------------------------------------------------===//

const char *ScanSrc = R"(
#define N 32
double V[N];
int main() {
  int i;
#pragma @Locus loop=scan
  for (i = 1; i < N; i++)
    V[i] = V[i - 1] + 1.0;
}
)";

TEST(OmpForGate, RejectsRacyLoopWithWitness) {
  auto P = parseOrDie(ScanSrc);
  Block *Region = P->findRegions("scan")[0];
  transform::TransformContext Ctx;
  transform::OmpForArgs Omp;
  Omp.LoopPath = "0";
  transform::TransformResult R = transform::applyOmpFor(*Region, Omp, Ctx);
  EXPECT_EQ(R.Status, transform::TransformStatus::Illegal);
  EXPECT_NE(R.Message.find("racy"), std::string::npos);
  EXPECT_NE(R.Message.find("V"), std::string::npos);
  EXPECT_TRUE(R.Loc.valid());
  // The pragma was not attached.
  auto Loop = cir::resolveLoopPath(*Region, "0");
  ASSERT_TRUE(Loop.ok());
  EXPECT_TRUE((*Loop)->Pragmas.empty());
}

TEST(OmpForGate, TrustParallelOverridesTheGate) {
  auto P = parseOrDie(ScanSrc);
  Block *Region = P->findRegions("scan")[0];
  transform::TransformContext Ctx;
  Ctx.TrustParallel = true;
  transform::OmpForArgs Omp;
  Omp.LoopPath = "0";
  EXPECT_TRUE(transform::applyOmpFor(*Region, Omp, Ctx).succeeded());
}

TEST(OmpForGate, UnknownRequiresDepsOnlyWhenAsked) {
  const char *Src = R"(
#define N 32
double A[N];
int IDX[N];
int main() {
  int i;
#pragma @Locus loop=gather
  for (i = 0; i < N; i++)
    A[IDX[i]] = 1.0;
}
)";
  {
    auto P = parseOrDie(Src);
    Block *Region = P->findRegions("gather")[0];
    transform::TransformContext Ctx;
    transform::OmpForArgs Omp;
    Omp.LoopPath = "0";
    EXPECT_TRUE(transform::applyOmpFor(*Region, Omp, Ctx).succeeded());
  }
  {
    auto P = parseOrDie(Src);
    Block *Region = P->findRegions("gather")[0];
    transform::TransformContext Ctx;
    Ctx.RequireDeps = true;
    transform::OmpForArgs Omp;
    Omp.LoopPath = "0";
    transform::TransformResult R = transform::applyOmpFor(*Region, Omp, Ctx);
    EXPECT_EQ(R.Status, transform::TransformStatus::Illegal);
    EXPECT_NE(R.Message.find("cannot prove"), std::string::npos);
  }
}

TEST(OmpForGate, SafeLoopStillParallelizes) {
  auto P = parseOrDie(MatmulSrc);
  Block *Region = P->findRegions("mm")[0];
  transform::TransformContext Ctx;
  transform::OmpForArgs Omp;
  Omp.LoopPath = "0";
  EXPECT_TRUE(transform::applyOmpFor(*Region, Omp, Ctx).succeeded());
}

//===----------------------------------------------------------------------===//
// Pragma idempotency (satellite: dedup had no dedicated test)
//===----------------------------------------------------------------------===//

TEST(OmpForGate, ReapplyingIsANoOp) {
  auto P = parseOrDie(MatmulSrc);
  Block *Region = P->findRegions("mm")[0];
  transform::TransformContext Ctx;
  transform::OmpForArgs Omp;
  Omp.LoopPath = "0";
  ASSERT_TRUE(transform::applyOmpFor(*Region, Omp, Ctx).succeeded());
  EXPECT_EQ(transform::applyOmpFor(*Region, Omp, Ctx).Status,
            transform::TransformStatus::NoOp);
  auto Loop = cir::resolveLoopPath(*Region, "0");
  ASSERT_TRUE(Loop.ok());
  EXPECT_EQ((*Loop)->Pragmas.size(), 1u);
}

TEST(Pragmas, ReapplyingPragmaIsANoOp) {
  auto P = parseOrDie(MatmulSrc);
  Block *Region = P->findRegions("mm")[0];
  transform::TransformContext Ctx;
  transform::PragmaArgs Args;
  Args.LoopPath = "0.0.0";
  Args.Text = "ivdep";
  ASSERT_TRUE(transform::applyPragma(*Region, Args, Ctx).succeeded());
  EXPECT_EQ(transform::applyPragma(*Region, Args, Ctx).Status,
            transform::TransformStatus::NoOp);
  EXPECT_EQ(transform::applyPragma(*Region, Args, Ctx).Status,
            transform::TransformStatus::NoOp);
  auto Loop = cir::resolveLoopPath(*Region, "0.0.0");
  ASSERT_TRUE(Loop.ok());
  ASSERT_EQ((*Loop)->Pragmas.size(), 1u);
  EXPECT_EQ((*Loop)->Pragmas[0], "ivdep");
}

//===----------------------------------------------------------------------===//
// Snippet-file gate (satellite)
//===----------------------------------------------------------------------===//

TEST(Altdesc, SnippetFileRequiresOptIn) {
  // A snippet argument that names a real file: without AllowSnippetFiles
  // the text is treated as inline source; with it, the file is read.
  std::string Path = testing::TempDir() + "/locus_snippet_test.txt";
  {
    std::ofstream Out(Path);
    Out << "A[i] = 7.0;";
  }
  const char *Src = R"(
#define N 8
double A[N];
int main() {
  int i;
#pragma @Locus block=r
  for (i = 0; i < N; i++)
    A[i] = 1.0;
#pragma @Locus endblock
}
)";
  {
    auto P = parseOrDie(Src);
    Block *Region = P->findRegions("r")[0];
    transform::TransformContext Ctx; // AllowSnippetFiles defaults to false
    transform::AltdescArgs Args;
    Args.StmtPath = "0";
    Args.Source = Path;
    transform::TransformResult R = transform::applyAltdesc(*Region, Args, Ctx);
    // The path string is not parseable C, so the replacement fails — but it
    // must fail by parsing the text, not by reading the file.
    EXPECT_FALSE(R.succeeded());
    EXPECT_EQ(printStmt(*Region).find("7.0"), std::string::npos);
  }
  {
    auto P = parseOrDie(Src);
    Block *Region = P->findRegions("r")[0];
    transform::TransformContext Ctx;
    Ctx.AllowSnippetFiles = true;
    transform::AltdescArgs Args;
    Args.StmtPath = "0";
    Args.Source = Path;
    transform::TransformResult R = transform::applyAltdesc(*Region, Args, Ctx);
    ASSERT_TRUE(R.succeeded()) << R.Message;
    EXPECT_NE(printStmt(*Region).find("7.0"), std::string::npos);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Simulator gate: unproven parallel loops are not sped up
//===----------------------------------------------------------------------===//

TEST(SimGate, UnprovenParallelLoopGetsNoSpeedupAndAWarning) {
  const char *Seq = R"(
#define N 64
double V[N];
int main() {
  int i;
  for (i = 1; i < N; i++)
    V[i] = V[i - 1] + 1.0;
}
)";
  const char *Par = R"(
#define N 64
double V[N];
int main() {
  int i;
#pragma omp parallel for
  for (i = 1; i < N; i++)
    V[i] = V[i - 1] + 1.0;
}
)";
  auto PSeq = parseOrDie(Seq);
  auto PPar = parseOrDie(Par);
  eval::EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::tiny();
  eval::RunResult RSeq = eval::evaluateProgram(*PSeq, Opts);
  eval::RunResult RPar = eval::evaluateProgram(*PPar, Opts);
  ASSERT_TRUE(RSeq.Ok) << RSeq.Error;
  ASSERT_TRUE(RPar.Ok) << RPar.Error;
  // Racy pragma: costed sequentially — identical cycles, identical
  // checksum, and a warning explaining the refusal.
  EXPECT_DOUBLE_EQ(RPar.Cycles, RSeq.Cycles);
  EXPECT_DOUBLE_EQ(RPar.Checksum, RSeq.Checksum);
  ASSERT_FALSE(RPar.Warnings.empty());
  EXPECT_NE(RPar.Warnings.front().find("not modeling parallel speedup"),
            std::string::npos);

  // TrustParallel restores the old behavior: the model applies a speedup.
  Opts.TrustParallel = true;
  eval::RunResult RTrust = eval::evaluateProgram(*PPar, Opts);
  ASSERT_TRUE(RTrust.Ok) << RTrust.Error;
  EXPECT_LT(RTrust.Cycles, RSeq.Cycles);
  EXPECT_TRUE(RTrust.Warnings.empty());
  // The simulator executes sequentially either way, so the (racy) result is
  // still deterministic and the checksum matches.
  EXPECT_DOUBLE_EQ(RTrust.Checksum, RSeq.Checksum);
}

TEST(SimGate, ProvenSafeParallelLoopStillSpeedsUp) {
  const char *Seq = R"(
#define N 64
double A[N];
double B[N];
int main() {
  int i;
  for (i = 0; i < N; i++)
    B[i] = A[i] * 2.0;
}
)";
  const char *Par = R"(
#define N 64
double A[N];
double B[N];
int main() {
  int i;
#pragma omp parallel for
  for (i = 0; i < N; i++)
    B[i] = A[i] * 2.0;
}
)";
  auto PSeq = parseOrDie(Seq);
  auto PPar = parseOrDie(Par);
  eval::EvalOptions Opts;
  Opts.Machine = machine::MachineConfig::tiny();
  eval::RunResult RSeq = eval::evaluateProgram(*PSeq, Opts);
  eval::RunResult RPar = eval::evaluateProgram(*PPar, Opts);
  ASSERT_TRUE(RSeq.Ok && RPar.Ok);
  EXPECT_LT(RPar.Cycles, RSeq.Cycles);
  EXPECT_TRUE(RPar.Warnings.empty());
}

//===----------------------------------------------------------------------===//
// Native clause annotation
//===----------------------------------------------------------------------===//

TEST(NativeClauses, AnnotateOmpClausesAddsDataSharing) {
  auto P = parseOrDie(R"(
#define N 16
double A[N][N];
double B[N][N];
double C[N][N];
double s;
int main() {
  int i, j, k;
#pragma omp parallel for
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
#pragma omp parallel for
  for (i = 0; i < N; i++)
    s = s + C[i][0];
}
)");
  int Annotated = annotateOmpClauses(*P);
  EXPECT_EQ(Annotated, 2);
  std::string Printed = printProgram(*P);
  EXPECT_NE(Printed.find("private(j,k)"), std::string::npos)
      << Printed;
  EXPECT_NE(Printed.find("reduction(+:s)"), std::string::npos) << Printed;
  // Idempotent: re-annotating changes nothing.
  EXPECT_EQ(annotateOmpClauses(*P), 0);
  EXPECT_EQ(printProgram(*P), Printed);
}

TEST(NativeClauses, EmittedCContainsClauses) {
  auto P = parseOrDie(R"(
#define N 16
double A[N];
double s;
int main() {
  int i;
#pragma omp parallel for
  for (i = 0; i < N; i++)
    s = s + A[i];
}
)");
  std::string C = eval::emitNativeC(*P);
  EXPECT_NE(C.find("#pragma omp parallel for"), std::string::npos) << C;
  EXPECT_NE(C.find("reduction(+:s)"), std::string::npos) << C;
}

} // namespace
} // namespace locus
