//===- EvalPoolTest.cpp - Evaluation pool, eval cache, parallel search ----===//

#include "src/search/EvalCache.h"
#include "src/search/EvalPool.h"
#include "src/search/Search.h"

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

namespace locus {
namespace {

using namespace search;

/// Expands a small test id into a full 128-bit cache key.
CacheKey k(uint64_t V) { return CacheKey{V, ~V}; }

//===----------------------------------------------------------------------===//
// EvalPool
//===----------------------------------------------------------------------===//

TEST(EvalPool, RunsEveryIndexExactlyOnce) {
  EvalPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4);
  // Reused across several jobs of different sizes (the search loop runs one
  // job per proposal batch against a persistent pool).
  for (size_t N : {size_t(1), size_t(7), size_t(100), size_t(3)}) {
    std::vector<std::atomic<int>> Hits(N);
    Pool.run(N, [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << " of " << N;
  }
}

TEST(EvalPool, SingleJobRunsInlineOnCaller) {
  EvalPool Pool(1);
  EXPECT_EQ(Pool.jobs(), 1);
  std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Ran(5);
  Pool.run(5, [&](size_t I) { Ran[I] = std::this_thread::get_id(); });
  for (const std::thread::id &Id : Ran)
    EXPECT_EQ(Id, Caller);
}

TEST(EvalPool, ZeroAndNegativeJobsClampToOne) {
  EXPECT_EQ(EvalPool(0).jobs(), 1);
  EXPECT_EQ(EvalPool(-3).jobs(), 1);
}

TEST(EvalPool, SleepingJobsOverlap) {
  // Four 100ms sleeps across four workers finish in ~100ms; run serially
  // they take 400ms. Sleeps overlap even on a single hardware core, so this
  // holds on any machine.
  using Clock = std::chrono::steady_clock;
  EvalPool Pool(4);
  auto Start = Clock::now();
  Pool.run(4, [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  auto Elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - Start);
  EXPECT_LT(Elapsed.count(), 300) << "pool did not overlap sleeping jobs";
}

//===----------------------------------------------------------------------===//
// EvalCache
//===----------------------------------------------------------------------===//

TEST(EvalCache, MakeCacheKeyIsDeterministicAndContentSensitive) {
  CacheKey A = makeCacheKey("for i { a[i] = 0 }");
  EXPECT_EQ(A, makeCacheKey("for i { a[i] = 0 }"));
  EXPECT_NE(A, makeCacheKey("for i { a[i] = 1 }"));
  // The halves come from independently-seeded streams; if they ever agreed
  // the key would silently degenerate to 64 bits.
  EXPECT_NE(A.Lo, A.Hi);
  // An embedded NUL is content like any other byte (keys hash raw program
  // text, not C strings).
  EXPECT_NE(makeCacheKey(std::string_view("x", 1)),
            makeCacheKey(std::string_view("x\0", 2)));
}

TEST(EvalCache, HitMissAndDedupAccounting) {
  EvalCache Cache;
  EXPECT_FALSE(Cache.lookup(k(1), "p1").has_value());
  Cache.insert(k(1), "p1", EvalOutcome::success(10.0));

  // Same point, same variant: a hit but not a cross-point dedup save.
  auto Hit = Cache.lookup(k(1), "p1");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(Hit->Metric, 10.0);

  // A distinct point whose variant hashes the same: a dedup save.
  auto Dedup = Cache.lookup(k(1), "p2");
  ASSERT_TRUE(Dedup.has_value());
  EXPECT_DOUBLE_EQ(Dedup->Metric, 10.0);

  EvalCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.DedupSaves, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(EvalCache, CachesClassifiedFailures) {
  EvalCache Cache;
  Cache.insert(k(7), "p", EvalOutcome::fail(FailureKind::RuntimeTrap, "oob"));
  auto Hit = Cache.lookup(k(7), "p");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Failure, FailureKind::RuntimeTrap);
  EXPECT_EQ(Hit->Detail, "oob");
}

TEST(EvalCache, FirstWriterWins) {
  EvalCache Cache;
  Cache.insert(k(3), "p1", EvalOutcome::success(1.0));
  Cache.insert(k(3), "p2", EvalOutcome::success(2.0)); // racing duplicate
  auto Hit = Cache.lookup(k(3), "p3");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(Hit->Metric, 1.0);
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

TEST(EvalCache, ConcurrentUseIsConsistent) {
  EvalCache Cache;
  EvalPool Pool(4);
  const size_t N = 400;
  Pool.run(N, [&](size_t I) {
    uint64_t Hash = I % 16;
    std::string Key = "p" + std::to_string(I);
    if (!Cache.lookup(k(Hash), Key))
      Cache.insert(k(Hash), Key, EvalOutcome::success(static_cast<double>(Hash)));
  });
  EvalCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, N);
  EXPECT_EQ(S.Entries, 16u);
  // Every served outcome is the first-written one for its hash.
  for (uint64_t H = 0; H < 16; ++H) {
    auto Hit = Cache.lookup(k(H), "check");
    ASSERT_TRUE(Hit.has_value());
    EXPECT_DOUBLE_EQ(Hit->Metric, static_cast<double>(H));
  }
}

//===----------------------------------------------------------------------===//
// Parallel search: trajectory equality and speedup
//===----------------------------------------------------------------------===//

Space mixedSpace() {
  Space S;
  ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64;
  S.Params.push_back(A);
  ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);
  ParamDef C;
  C.Id = "c";
  C.Label = "c";
  C.Kind = ParamKind::Enum;
  C.Options = {"x", "y", "z"};
  S.Params.push_back(C);
  return S;
}

/// Pure function of the point: safe for concurrent assessment.
double synthetic(const Point &P, bool &Valid) {
  Valid = true;
  double A = static_cast<double>(P.getInt("a"));
  double B = static_cast<double>(P.getInt("b"));
  double C = static_cast<double>(P.getInt("c"));
  return std::abs(std::log2(A) - 4.0) * 3 + std::abs(B - 7.0) +
         std::abs(C - 1.0) * 5;
}

const char *const AllSearchers[] = {"exhaustive", "random", "hillclimb",
                                    "de", "bandit", "tpe"};

TEST(ParallelSearch, TrajectoryIsIdenticalToSerial) {
  for (const char *Name : AllSearchers) {
    SearchOptions Serial;
    Serial.MaxEvaluations = 120;
    Serial.Seed = 7;
    SearchOptions Par = Serial;
    Par.Jobs = 4;

    Space S = mixedSpace();
    LambdaObjective SerialObj(synthetic, /*ThreadSafe=*/true);
    LambdaObjective ParObj(synthetic, /*ThreadSafe=*/true);
    SearchResult RS = makeSearcher(Name)->search(S, SerialObj, Serial);
    SearchResult RP = makeSearcher(Name)->search(S, ParObj, Par);

    EXPECT_EQ(RP.PoolJobs, 4) << Name;
    EXPECT_EQ(RS.Found, RP.Found) << Name;
    EXPECT_EQ(RS.Best.key(), RP.Best.key()) << Name;
    EXPECT_DOUBLE_EQ(RS.BestMetric, RP.BestMetric) << Name;
    EXPECT_EQ(RS.Evaluations, RP.Evaluations) << Name;
    EXPECT_EQ(RS.DuplicateHits, RP.DuplicateHits) << Name;
    EXPECT_EQ(RS.InvalidPoints, RP.InvalidPoints) << Name;
    // The full evaluation history — every assessed point, in order, with
    // its metric — must be bit-identical: parallel dispatch commits results
    // back in proposal order.
    ASSERT_EQ(RS.History.size(), RP.History.size()) << Name;
    for (size_t I = 0; I < RS.History.size(); ++I) {
      EXPECT_EQ(RS.History[I].P.key(), RP.History[I].P.key())
          << Name << " history entry " << I;
      EXPECT_DOUBLE_EQ(RS.History[I].Metric, RP.History[I].Metric)
          << Name << " history entry " << I;
    }
  }
}

TEST(ParallelSearch, PoolNotUsedWithoutObjectiveOptIn) {
  Space S = mixedSpace();
  // ThreadSafe defaults to false: the pool must stay serial even though the
  // caller asked for 4 jobs.
  LambdaObjective Obj(synthetic);
  SearchOptions Opts;
  Opts.MaxEvaluations = 40;
  Opts.Jobs = 4;
  SearchResult R = makeSearcher("de")->search(S, Obj, Opts);
  EXPECT_EQ(R.PoolJobs, 1);
  EXPECT_EQ(R.PooledEvaluations, 0);
}

TEST(ParallelSearch, BatchingSearchersReportPoolCounters) {
  for (const char *Name : {"exhaustive", "de", "random"}) {
    Space S = mixedSpace();
    LambdaObjective Obj(synthetic, /*ThreadSafe=*/true);
    SearchOptions Opts;
    Opts.MaxEvaluations = 64;
    Opts.Seed = 3;
    Opts.Jobs = 4;
    SearchResult R = makeSearcher(Name)->search(S, Obj, Opts);
    EXPECT_EQ(R.PoolJobs, 4) << Name;
    EXPECT_GT(R.Batches, 0) << Name;
    EXPECT_GT(R.MaxBatch, 1) << Name;
    EXPECT_GT(R.PooledEvaluations, 0) << Name;
    EXPECT_LE(R.PooledEvaluations, R.Evaluations) << Name;
  }
}

TEST(ParallelSearch, SleepyObjectiveSpeedsUpAtLeastTwofold) {
  // The acceptance check for the pool: with 4 workers, a batching searcher
  // over a slow objective must cut wall-clock by >= 2x with an identical
  // result. The objective sleeps instead of computing, so the speedup holds
  // even on single-core CI machines (sleeping threads overlap).
  using Clock = std::chrono::steady_clock;
  for (const char *Name : {"exhaustive", "de"}) {
    Space S = mixedSpace();
    auto Sleepy = [](const Point &P, bool &Valid) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      return synthetic(P, Valid);
    };
    SearchOptions Serial;
    Serial.MaxEvaluations = 64;
    Serial.Seed = 11;
    SearchOptions Par = Serial;
    Par.Jobs = 4;

    LambdaObjective SerialObj(Sleepy, /*ThreadSafe=*/true);
    auto T0 = Clock::now();
    SearchResult RS = makeSearcher(Name)->search(S, SerialObj, Serial);
    auto SerialMs = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - T0);

    LambdaObjective ParObj(Sleepy, /*ThreadSafe=*/true);
    auto T1 = Clock::now();
    SearchResult RP = makeSearcher(Name)->search(S, ParObj, Par);
    auto ParMs = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - T1);

    EXPECT_EQ(RS.Best.key(), RP.Best.key()) << Name;
    EXPECT_DOUBLE_EQ(RS.BestMetric, RP.BestMetric) << Name;
    EXPECT_EQ(RS.Evaluations, RP.Evaluations) << Name;
    EXPECT_GE(SerialMs.count(), 2 * ParMs.count())
        << Name << ": serial " << SerialMs.count() << "ms vs parallel "
        << ParMs.count() << "ms";
  }
}

TEST(ParallelSearch, DuplicateProposalsServedFromMemo) {
  // A two-point space forces the random searcher into duplicate streaks;
  // every duplicate must be served from the memo (counted in DuplicateHits)
  // rather than burning objective calls or budget.
  Space S;
  ParamDef D;
  D.Id = "d";
  D.Label = "d";
  D.Kind = ParamKind::Bool;
  S.Params.push_back(D);

  std::atomic<int> Calls{0};
  LambdaObjective Obj(
      [&Calls](const Point &P, bool &Valid) {
        Calls.fetch_add(1);
        Valid = true;
        return static_cast<double>(P.getInt("d"));
      },
      /*ThreadSafe=*/true);
  SearchOptions Opts;
  Opts.MaxEvaluations = 50;
  Opts.Seed = 1;
  Opts.Jobs = 4;
  SearchResult R = makeSearcher("random")->search(S, Obj, Opts);
  EXPECT_EQ(R.Evaluations, 2);
  EXPECT_EQ(Calls.load(), 2);
  EXPECT_GT(R.DuplicateHits, 0);
  EXPECT_EQ(R.DuplicateHits, R.DuplicatesSkipped);
  EXPECT_TRUE(R.Found);
  EXPECT_DOUBLE_EQ(R.BestMetric, 0.0);
}

//===----------------------------------------------------------------------===//
// Orchestrator: --jobs and the content-addressed cache over real variants
//===----------------------------------------------------------------------===//

struct MatmulFixture {
  std::unique_ptr<lang::LocusProgram> LP;
  std::unique_ptr<cir::Program> CP;
  MatmulFixture() {
    auto L = lang::parseLocusProgram(workloads::dgemmLocusFig5());
    EXPECT_TRUE(L.ok()) << L.message();
    LP = std::move(*L);
    auto C = cir::parseProgram(workloads::dgemmSource(24, 24, 24));
    EXPECT_TRUE(C.ok()) << C.message();
    CP = std::move(*C);
  }
  driver::OrchestratorOptions options(const std::string &Searcher) const {
    driver::OrchestratorOptions Opts;
    Opts.Eval.Machine = machine::MachineConfig::tiny();
    Opts.SearcherName = Searcher;
    Opts.MaxEvaluations = 24;
    Opts.Seed = 5;
    return Opts;
  }
};

TEST(DriverPool, ParallelMatmulSearchMatchesSerial) {
  MatmulFixture F;
  for (const char *Name : {"de", "exhaustive"}) {
    driver::OrchestratorOptions Serial = F.options(Name);
    driver::OrchestratorOptions Par = F.options(Name);
    Par.Jobs = 4;

    using Clock = std::chrono::steady_clock;
    driver::Orchestrator SOrch(*F.LP, *F.CP, Serial);
    auto T0 = Clock::now();
    auto RS = SOrch.runSearch();
    auto SerialMs = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - T0);
    ASSERT_TRUE(RS.ok()) << RS.message();

    driver::Orchestrator POrch(*F.LP, *F.CP, Par);
    auto T1 = Clock::now();
    auto RP = POrch.runSearch();
    auto ParMs = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - T1);
    ASSERT_TRUE(RP.ok()) << RP.message();

    // Identical best point and metric, always.
    EXPECT_EQ(RP->Search.PoolJobs, 4) << Name;
    EXPECT_EQ(RS->Search.Best.key(), RP->Search.Best.key()) << Name;
    EXPECT_DOUBLE_EQ(RS->BestCycles, RP->BestCycles) << Name;
    EXPECT_EQ(RS->Search.Evaluations, RP->Search.Evaluations) << Name;
    EXPECT_EQ(RS->BaselineChosen, RP->BaselineChosen) << Name;

    // Wall-clock speedup needs real cores; CI containers with one core
    // cannot show a CPU-bound speedup, so gate the timing assertion.
    if (std::thread::hardware_concurrency() >= 4 && SerialMs.count() >= 200) {
      EXPECT_GE(SerialMs.count(), 2 * ParMs.count())
          << Name << ": serial " << SerialMs.count() << "ms vs parallel "
          << ParMs.count() << "ms";
    }
  }
}

TEST(DriverPool, EvalCacheDoesNotChangeResults) {
  MatmulFixture F;
  driver::OrchestratorOptions With = F.options("bandit");
  driver::OrchestratorOptions Without = F.options("bandit");
  Without.UseEvalCache = false;

  driver::Orchestrator WOrch(*F.LP, *F.CP, With);
  auto RW = WOrch.runSearch();
  ASSERT_TRUE(RW.ok()) << RW.message();
  driver::Orchestrator NOrch(*F.LP, *F.CP, Without);
  auto RN = NOrch.runSearch();
  ASSERT_TRUE(RN.ok()) << RN.message();

  EXPECT_EQ(RW->Search.Best.key(), RN->Search.Best.key());
  EXPECT_DOUBLE_EQ(RW->BestCycles, RN->BestCycles);
  EXPECT_EQ(RW->Search.Evaluations, RN->Search.Evaluations);

  // The cache saw every materialized variant; the uncached run reports
  // nothing.
  EXPECT_GT(RW->Search.CacheMisses, 0u);
  EXPECT_EQ(RN->Search.CacheHits + RN->Search.CacheMisses, 0u);
}

TEST(DriverPool, CacheCountsCrossPointDedupSaves) {
  // Tile sizes larger than the 24-iteration loops clamp to the same
  // materialized variant, so a searcher that proposes several of them gets
  // cross-point dedup saves.
  MatmulFixture F;
  driver::OrchestratorOptions Opts = F.options("random");
  Opts.MaxEvaluations = 40;
  driver::Orchestrator Orch(*F.LP, *F.CP, Opts);
  auto R = Orch.runSearch();
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_GT(R->Search.CacheMisses, 0u);
  EXPECT_GT(R->Search.CacheDedupSaves, 0u)
      << "expected distinct points to materialize to shared variants";
}

} // namespace
} // namespace locus
