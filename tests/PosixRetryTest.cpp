//===- PosixRetryTest.cpp - EINTR retry wrappers under a signal storm ---------===//
//
// The EINTR audit's provoking test: a high-frequency interval timer whose
// handler is installed *without* SA_RESTART delivers SIGALRM while the
// retry wrappers of src/support/Posix.h are parked in read/write/poll/
// waitpid. Every wrapper must absorb the interruptions and preserve the
// underlying call's contract; the raw syscalls would fail with EINTR under
// this storm (which is exactly how worker heartbeat timers and the SIGTERM
// shutdown handler hit the service's I/O in production).
//
//===----------------------------------------------------------------------===//

#include "src/support/Posix.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <sys/time.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

namespace locus {
namespace {

volatile sig_atomic_t AlarmHits = 0;

void onAlarm(int) { AlarmHits = AlarmHits + 1; }

/// RAII signal storm: SIGALRM every 2 ms, handler installed with
/// sa_flags = 0 so interrupted syscalls really do return EINTR instead of
/// being restarted by the kernel.
class AlarmStorm {
public:
  AlarmStorm() {
    AlarmHits = 0;
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onAlarm;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = 0; // no SA_RESTART: this is the whole point
    sigaction(SIGALRM, &SA, &Old);
    struct itimerval Timer;
    Timer.it_interval.tv_sec = 0;
    Timer.it_interval.tv_usec = 2000;
    Timer.it_value = Timer.it_interval;
    setitimer(ITIMER_REAL, &Timer, &OldTimer);
  }
  ~AlarmStorm() {
    setitimer(ITIMER_REAL, &OldTimer, nullptr);
    sigaction(SIGALRM, &Old, nullptr);
  }

private:
  struct sigaction Old;
  struct itimerval OldTimer;
};

TEST(PosixRetry, ReadSurvivesSignalStorm) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  AlarmStorm Storm;

  // The reader parks in read(2) long enough for dozens of SIGALRMs to land
  // before any data shows up.
  std::thread Writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_TRUE(support::retryWriteAll(Fds[1], "hello", 5));
    close(Fds[1]);
  });
  char Buf[16];
  ssize_t N = support::retryRead(Fds[0], Buf, sizeof(Buf));
  Writer.join();
  EXPECT_EQ(N, 5);
  EXPECT_EQ(std::string(Buf, 5), "hello");
  // EOF after the writer closed, still under the storm.
  EXPECT_EQ(support::retryRead(Fds[0], Buf, sizeof(Buf)), 0);
  close(Fds[0]);
  EXPECT_GT(AlarmHits, 0) << "the storm never fired; the test proves nothing";
}

TEST(PosixRetry, WriteAllSurvivesSignalStormAndShortWrites) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  AlarmStorm Storm;

  // 1 MiB through a ~64 KiB pipe forces many short writes, each of which
  // can be (and under the storm, will be) EINTR-interrupted while blocked
  // on the slow drainer.
  const size_t Total = 1 << 20;
  std::string Payload(Total, 'x');
  size_t Drained = 0;
  std::thread Drainer([&] {
    char Buf[4096];
    for (;;) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ssize_t N = support::retryRead(Fds[0], Buf, sizeof(Buf));
      if (N <= 0)
        break;
      Drained += static_cast<size_t>(N);
    }
  });
  size_t Written = 0;
  bool Ok = support::retryWriteAll(Fds[1], Payload.data(), Total, &Written);
  close(Fds[1]);
  Drainer.join();
  close(Fds[0]);
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Written, Total);
  EXPECT_EQ(Drained, Total);
  EXPECT_GT(AlarmHits, 0);
}

TEST(PosixRetry, PollTimeoutIsReArmedAgainstADeadline) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  AlarmStorm Storm;

  // With no data, poll must still time out in ~TimeoutMs even though each
  // individual poll(2) is interrupted every 2 ms — the wrapper re-arms
  // against a monotonic deadline, so the storm can neither abort the wait
  // nor extend it.
  struct pollfd P;
  P.fd = Fds[0];
  P.events = POLLIN;
  auto T0 = std::chrono::steady_clock::now();
  int R = support::retryPoll(&P, 1, 250);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_EQ(R, 0);
  EXPECT_GE(ElapsedMs, 200);
  EXPECT_LT(ElapsedMs, 5000);

  // And data arriving mid-storm wakes it up with POLLIN.
  std::thread Writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(support::retryWriteAll(Fds[1], "x", 1));
  });
  R = support::retryPoll(&P, 1, 5000);
  Writer.join();
  EXPECT_EQ(R, 1);
  EXPECT_TRUE(P.revents & POLLIN);
  close(Fds[0]);
  close(Fds[1]);
  EXPECT_GT(AlarmHits, 0);
}

TEST(PosixRetry, WaitpidSurvivesSignalStorm) {
  AlarmStorm Storm;
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // In the child: outlive a few storm ticks, then exit with a marker.
    struct timespec Ts = {0, 120 * 1000 * 1000};
    nanosleep(&Ts, nullptr);
    _exit(7);
  }
  int WaitStatus = 0;
  pid_t Reaped = support::retryWaitpid(Child, &WaitStatus, 0);
  EXPECT_EQ(Reaped, Child);
  ASSERT_TRUE(WIFEXITED(WaitStatus));
  EXPECT_EQ(WEXITSTATUS(WaitStatus), 7);
  EXPECT_GT(AlarmHits, 0);
}

TEST(PosixRetry, OpenFlockAndCloseContracts) {
  // retryFlock on a negative fd is the documented "nothing to lock" no-op.
  EXPECT_EQ(support::retryFlock(-1, LOCK_EX), 0);

  std::string Path = "/tmp/locus-posix-retry-XXXXXX";
  int Fd = mkstemp(Path.data());
  ASSERT_GE(Fd, 0);
  support::closeQuietly(Fd);

  AlarmStorm Storm;
  int Reopened = support::retryOpen(Path.c_str(), O_RDWR, 0);
  EXPECT_GE(Reopened, 0);
  EXPECT_EQ(support::retryFlock(Reopened, LOCK_EX), 0);
  EXPECT_EQ(support::retryFlock(Reopened, LOCK_UN), 0);
  support::closeQuietly(Reopened);
  unlink(Path.c_str());
}

} // namespace
} // namespace locus
