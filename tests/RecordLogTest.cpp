//===- RecordLogTest.cpp - Crash-safe record-file substrate tests -------------===//
//
// Framing round-trips, every recovery edge the torture harness relies on
// (empty file, header-only, torn header, torn record, flipped bytes,
// mid-file corruption, leftover compaction temp), compaction, and the
// multi-process/thread locking contract of support::RecordLog.
//
//===----------------------------------------------------------------------===//

#include "src/support/RecordLog.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/resource.h>
#include <sys/stat.h>
#include <thread>

namespace locus {
namespace {

using support::RecordLog;
using support::RecordLogOptions;
using support::RecordLogScan;

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void writeFile(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Data;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

struct LogFixture {
  support::TempDir Dir{"locus-rlog-"};
  std::string Path = Dir.path() + "/test.rlog";
};

TEST(RecordLog, Crc32cKnownVectors) {
  // The iSCSI test vector: CRC-32C of "123456789".
  EXPECT_EQ(support::crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(support::crc32c(""), 0u);
  // Seeding chains: crc(a+b) == crc(b, seeded with crc(a)).
  EXPECT_EQ(support::crc32c("123456789"),
            support::crc32c("456789", support::crc32c("123")));
}

TEST(RecordLog, AppendScanRoundTrip) {
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "hdr v1";
  {
    auto Log = RecordLog::open(F.Path, Opts);
    ASSERT_TRUE(Log.ok()) << Log.message();
    EXPECT_TRUE(Log->append("alpha").ok());
    EXPECT_TRUE(Log->append("").ok()); // empty payloads are legal records
    std::string Binary("\x00\x01\xff\n\r", 5);
    EXPECT_TRUE(Log->append(Binary).ok());
  }
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok()) << Scan.message();
  EXPECT_EQ(Scan->Header, "hdr v1");
  ASSERT_EQ(Scan->Records.size(), 3u);
  EXPECT_EQ(Scan->Records[0], "alpha");
  EXPECT_EQ(Scan->Records[1], "");
  EXPECT_EQ(Scan->Records[2], std::string("\x00\x01\xff\n\r", 5));
  EXPECT_FALSE(Scan->TornTail);
  EXPECT_FALSE(Scan->MidFileCorruption);
  EXPECT_EQ(Scan->GoodBytes, readFile(F.Path).size());
}

TEST(RecordLog, MissingFileScansEmptyAndHeaderMismatchIsAnError) {
  LogFixture F;
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  EXPECT_TRUE(Scan->Records.empty());

  RecordLogOptions A;
  A.Header = "app A";
  { auto Log = RecordLog::open(F.Path, A); ASSERT_TRUE(Log.ok()); }
  RecordLogOptions B;
  B.Header = "app B";
  auto Mismatch = RecordLog::open(F.Path, B);
  EXPECT_FALSE(Mismatch.ok());
  B.RequireHeaderMatch = false;
  auto Tolerant = RecordLog::open(F.Path, B);
  EXPECT_TRUE(Tolerant.ok()) << Tolerant.message();
}

TEST(RecordLog, EmptyFileIsInitializedLikeAMissingOne) {
  LogFixture F;
  writeFile(F.Path, "");
  RecordLogOptions Opts;
  Opts.Header = "h";
  auto Log = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(Log.ok()) << Log.message();
  EXPECT_TRUE(Log->append("r").ok());
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  EXPECT_EQ(Scan->Header, "h");
  EXPECT_EQ(Scan->Records.size(), 1u);
}

TEST(RecordLog, HeaderOnlyFileHasNoRecords) {
  LogFixture F;
  writeFile(F.Path, RecordLog::encodeHeaderBlock("only header"));
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok()) << Scan.message();
  EXPECT_EQ(Scan->Header, "only header");
  EXPECT_TRUE(Scan->Records.empty());
  EXPECT_FALSE(Scan->TornTail);
}

TEST(RecordLog, TornHeaderIsRecoverableTearing) {
  // A crash while writing the very first block leaves a prefix of the
  // prologue; open() must rebuild the file rather than error out.
  LogFixture F;
  std::string Block = RecordLog::encodeHeaderBlock("the header");
  writeFile(F.Path, Block.substr(0, Block.size() / 2));
  RecordLogOptions Opts;
  Opts.Header = "the header";
  RecordLogScan Recovery;
  auto Log = RecordLog::open(F.Path, Opts, &Recovery);
  ASSERT_TRUE(Log.ok()) << Log.message();
  EXPECT_TRUE(Recovery.TornTail);
  EXPECT_TRUE(Log->append("after recovery").ok());
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  EXPECT_EQ(Scan->Header, "the header");
  ASSERT_EQ(Scan->Records.size(), 1u);
  EXPECT_EQ(Scan->Records[0], "after recovery");
}

TEST(RecordLog, GarbageFileIsBadMagic) {
  LogFixture F;
  writeFile(F.Path, "this is not a record log at all, not even close\n");
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_FALSE(Scan.ok());
  EXPECT_NE(Scan.message().find("bad magic at byte 0"), std::string::npos)
      << Scan.message();
  RecordLogOptions Opts;
  auto Log = RecordLog::open(F.Path, Opts);
  EXPECT_FALSE(Log.ok());
}

TEST(RecordLog, TornTailAtEveryTruncationPointRecoversThePrefix) {
  // Truncate a 3-record file at every byte inside the last frame: the scan
  // must flag a torn tail and keep exactly the first two records; open()
  // must amputate the tail and leave an appendable log.
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  {
    auto Log = RecordLog::open(F.Path, Opts);
    ASSERT_TRUE(Log.ok());
    ASSERT_TRUE(Log->append("one").ok());
    ASSERT_TRUE(Log->append("two").ok());
    ASSERT_TRUE(Log->append("three").ok());
  }
  std::string Full = readFile(F.Path);
  uint64_t LastFrame = Full.size() - RecordLog::encodeFrame("three").size();
  for (uint64_t Cut = LastFrame + 1; Cut < Full.size(); ++Cut) {
    writeFile(F.Path, Full.substr(0, Cut));
    auto Scan = RecordLog::scan(F.Path);
    ASSERT_TRUE(Scan.ok()) << "cut at " << Cut << ": " << Scan.message();
    EXPECT_TRUE(Scan->TornTail) << "cut at " << Cut;
    EXPECT_FALSE(Scan->MidFileCorruption) << "cut at " << Cut;
    EXPECT_EQ(Scan->TornOffset, LastFrame) << "cut at " << Cut;
    ASSERT_EQ(Scan->Records.size(), 2u) << "cut at " << Cut;
  }
  // Recovery truncates and the log keeps working.
  writeFile(F.Path, Full.substr(0, Full.size() - 2));
  RecordLogScan Recovery;
  auto Log = RecordLog::open(F.Path, Opts, &Recovery);
  ASSERT_TRUE(Log.ok()) << Log.message();
  EXPECT_TRUE(Recovery.TornTail);
  EXPECT_TRUE(Log->append("three-again").ok());
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  ASSERT_EQ(Scan->Records.size(), 3u);
  EXPECT_EQ(Scan->Records[2], "three-again");
}

TEST(RecordLog, FlippedByteBeforeTailIsMidFileCorruption) {
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  {
    auto Log = RecordLog::open(F.Path, Opts);
    ASSERT_TRUE(Log.ok());
    ASSERT_TRUE(Log->append("record-one").ok());
    ASSERT_TRUE(Log->append("record-two").ok());
  }
  std::string Full = readFile(F.Path);
  uint64_t FirstFrame = RecordLog::headerBlockSize(1); // header "h"
  // Flip one payload byte of the first record (past its 8-byte frame
  // prologue) while the second record stays intact behind it.
  std::string Bad = Full;
  Bad[FirstFrame + 8 + 3] ^= 0x40;
  writeFile(F.Path, Bad);
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok()) << Scan.message();
  EXPECT_TRUE(Scan->TornTail);
  EXPECT_TRUE(Scan->MidFileCorruption);
  EXPECT_EQ(Scan->TornOffset, FirstFrame);
  EXPECT_NE(Scan->Why.find("CRC mismatch"), std::string::npos) << Scan->Why;
  EXPECT_TRUE(Scan->Records.empty()); // nothing before the damage survives
}

TEST(RecordLog, CorruptFinalRecordIsTearingNotRot) {
  // Damage confined to the very last complete frame cannot be told apart
  // from a crashed writer that got the full length down with garbage in
  // it, so it classifies as recoverable tearing — only damage with intact
  // data *behind* it is flagged as mid-file corruption.
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  {
    auto Log = RecordLog::open(F.Path, Opts);
    ASSERT_TRUE(Log.ok());
    ASSERT_TRUE(Log->append("solo").ok());
  }
  std::string Full = readFile(F.Path);
  Full[Full.size() - 1] ^= 0x01;
  writeFile(F.Path, Full);
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  EXPECT_TRUE(Scan->TornTail);
  EXPECT_FALSE(Scan->MidFileCorruption);
  EXPECT_NE(Scan->Why.find("corrupt final record"), std::string::npos)
      << Scan->Why;
  EXPECT_TRUE(Scan->Records.empty());
}

TEST(RecordLog, CompactionRewritesAndLeftoverTempIsRemoved) {
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  auto Log = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(Log.ok());
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(Log->append("record " + std::to_string(I)).ok());
  uint64_t Before = readFile(F.Path).size();
  ASSERT_TRUE(Log->compact({"kept-a", "kept-b"}).ok());
  EXPECT_LT(readFile(F.Path).size(), Before);
  // The same writer keeps appending to the new inode.
  ASSERT_TRUE(Log->append("post-compact").ok());
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  EXPECT_EQ(Scan->Header, "h");
  ASSERT_EQ(Scan->Records.size(), 3u);
  EXPECT_EQ(Scan->Records[0], "kept-a");
  EXPECT_EQ(Scan->Records[2], "post-compact");

  // A compactor that crashed after writing its temp but before the rename
  // leaves <path>.compact-tmp; reopening removes it and trusts the live
  // file.
  Log->close();
  std::string Tmp = F.Path + ".compact-tmp";
  writeFile(Tmp, "half-written compaction");
  auto Reopened = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(Reopened.ok()) << Reopened.message();
  EXPECT_FALSE(fileExists(Tmp));
  auto Scan2 = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan2.ok());
  EXPECT_EQ(Scan2->Records.size(), 3u);
}

TEST(RecordLog, SecondWriterSeesCompactedFile) {
  // Writer A compacts while writer B holds an fd to the old inode; B's next
  // append must land in the new file, not the unlinked one.
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  auto A = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(A->append("a1").ok());
  auto B = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(B.ok());
  ASSERT_TRUE(A->compact({"compacted"}).ok());
  ASSERT_TRUE(B->append("b-after-compaction").ok());
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok());
  ASSERT_EQ(Scan->Records.size(), 2u);
  EXPECT_EQ(Scan->Records[0], "compacted");
  EXPECT_EQ(Scan->Records[1], "b-after-compaction");
}

TEST(RecordLog, ConcurrentAppendersNeverTearFrames) {
  // Two open writers, four threads, interleaved appends: every record must
  // scan back intact (frame atomicity under the in-process mutex + flock).
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  auto A = RecordLog::open(F.Path, Opts);
  auto B = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  constexpr int PerThread = 25;
  auto Pump = [PerThread](RecordLog &Log, const std::string &Tag) {
    for (int I = 0; I < PerThread; ++I)
      ASSERT_TRUE(Log.append(Tag + ":" + std::to_string(I) +
                             std::string(64, 'x')).ok());
  };
  std::thread T1(Pump, std::ref(*A), "a1"), T2(Pump, std::ref(*A), "a2");
  std::thread T3(Pump, std::ref(*B), "b1"), T4(Pump, std::ref(*B), "b2");
  T1.join(); T2.join(); T3.join(); T4.join();
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok()) << Scan.message();
  EXPECT_FALSE(Scan->TornTail);
  ASSERT_EQ(Scan->Records.size(), 4u * PerThread);
  int Counts[4] = {0, 0, 0, 0};
  for (const std::string &R : Scan->Records) {
    if (R.compare(0, 3, "a1:") == 0) ++Counts[0];
    else if (R.compare(0, 3, "a2:") == 0) ++Counts[1];
    else if (R.compare(0, 3, "b1:") == 0) ++Counts[2];
    else if (R.compare(0, 3, "b2:") == 0) ++Counts[3];
  }
  for (int C : Counts)
    EXPECT_EQ(C, PerThread);
}

TEST(RecordLog, DiskFullAmputatesThePartialFrameAndRecovers) {
  // RLIMIT_FSIZE makes writes past the cap fail with EFBIG (SIGXFSZ
  // ignored): append() must report the error, amputate any partial frame,
  // and leave the on-disk log scanning clean.
  if (!support::rlimitsSupported())
    GTEST_SKIP() << "setrlimit unavailable";
  LogFixture F;
  RecordLogOptions Opts;
  Opts.Header = "h";
  auto Log = RecordLog::open(F.Path, Opts);
  ASSERT_TRUE(Log.ok());
  ASSERT_TRUE(Log->append("fits").ok());
  uint64_t Size = readFile(F.Path).size();

  struct sigaction Old, Ign;
  std::memset(&Ign, 0, sizeof(Ign));
  Ign.sa_handler = SIG_IGN;
  ASSERT_EQ(::sigaction(SIGXFSZ, &Ign, &Old), 0);
  struct rlimit OldLim;
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &OldLim), 0);
  struct rlimit Cap = OldLim;
  Cap.rlim_cur = Size + 6; // room for part of the next frame, not all of it
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &Cap), 0);

  Status Blocked = Log->append(std::string(128, 'z'));
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &OldLim), 0);
  ASSERT_EQ(::sigaction(SIGXFSZ, &Old, nullptr), 0);

  EXPECT_FALSE(Blocked.ok());
  auto Scan = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan.ok()) << Scan.message();
  EXPECT_FALSE(Scan->TornTail) << Scan->Why;
  ASSERT_EQ(Scan->Records.size(), 1u);
  EXPECT_EQ(Scan->Records[0], "fits");
  // With the limit lifted the same writer appends successfully again.
  EXPECT_TRUE(Log->append("after the squeeze").ok());
  auto Scan2 = RecordLog::scan(F.Path);
  ASSERT_TRUE(Scan2.ok());
  EXPECT_EQ(Scan2->Records.size(), 2u);
}

} // namespace
} // namespace locus
