//===- CrashTortureTest.cpp - Kill a real search mid-write, then resume -------===//
//
// The end-to-end durability proof: a real orchestrator search process
// (tests/helpers/search_crash_victim.cpp) is SIGKILLed in the middle of
// journal/cache appends at injected points (LOCUS_RECORDLOG_CRASH_AT, armed
// inside the victim via --crash-at), and after every crash a --resume run
// must converge on exactly the BEST point, metric, and journal trajectory
// of the run that was never interrupted. Plus the other ways durable state
// dies in the field: flipped bytes (resume refuses with a located error),
// disk full (RLIMIT_FSIZE; the store amputates and the search still
// finishes), and concurrent processes sharing one cache directory.
//
//===----------------------------------------------------------------------===//

#include "src/search/PersistentEvalCache.h"
#include "src/support/RecordLog.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace locus {
namespace {

using support::RecordLog;
using support::SubprocessOptions;
using support::SubprocessResult;

SubprocessResult runVictim(std::vector<std::string> Args,
                           long FileSizeBytes = 0) {
  SubprocessOptions Opts;
  Opts.Argv.push_back(LOCUS_SEARCH_VICTIM);
  for (std::string &A : Args)
    Opts.Argv.push_back(std::move(A));
  Opts.Limits.WallClockSeconds = 120;
  Opts.Limits.FileSizeBytes = FileSizeBytes;
  return support::runSubprocess(Opts);
}

/// The value of the "TAG ..." line of a victim's summary output.
std::string summaryLine(const std::string &Stdout, const std::string &Tag) {
  std::istringstream In(Stdout);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.compare(0, Tag.size() + 1, Tag + " ") == 0)
      return Line.substr(Tag.size() + 1);
  return "";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

TEST(CrashTorture, ResumeAfterMidWriteKillsMatchesUninterruptedRun) {
  support::TempDir Dir("locus-torture-");
  ASSERT_TRUE(Dir.valid());

  // The reference: one uninterrupted run.
  std::string RefJournal = Dir.path() + "/ref.rlog";
  SubprocessResult Ref = runVictim({"--journal", RefJournal, "--cache-dir",
                                    Dir.path() + "/refcache"});
  ASSERT_TRUE(Ref.ok()) << Ref.describe() << "\n" << Ref.Stderr;
  std::string WantBest = summaryLine(Ref.Stdout, "BEST");
  std::string WantMetric = summaryLine(Ref.Stdout, "METRIC");
  ASSERT_FALSE(WantBest.empty());
  ASSERT_FALSE(WantMetric.empty());

  // The torture subject: SIGKILLed mid-append at scattered points — counted
  // process-wide across the journal AND the cache store, so both logs take
  // torn-tail hits — with varying partial-frame sizes (half a frame, one
  // byte, a zero-byte cut right at the boundary).
  std::string Journal = Dir.path() + "/torture.rlog";
  std::string CacheDir = Dir.path() + "/torturecache";
  const char *CrashAt[] = {"2", "5:1", "9:0", "14", "21:2"};
  int Crashes = 0;
  for (const char *Spec : CrashAt) {
    SubprocessResult R = runVictim({"--journal", Journal, "--resume",
                                    "--cache-dir", CacheDir, "--crash-at",
                                    Spec});
    if (R.ok())
      break; // the append counter outran the remaining work; done early
    ASSERT_EQ(R.Exit, support::SpawnExit::Signaled) << R.describe();
    ASSERT_EQ(R.Signal, SIGKILL) << R.describe();
    ++Crashes;
  }
  ASSERT_GT(Crashes, 0) << "no injected crash fired; the torture ran idle";

  // After every crash: one clean resume must finish the search and land on
  // the reference result exactly.
  SubprocessResult Final = runVictim({"--journal", Journal, "--resume",
                                      "--cache-dir", CacheDir});
  ASSERT_TRUE(Final.ok()) << Final.describe() << "\n" << Final.Stderr;
  EXPECT_EQ(summaryLine(Final.Stdout, "BEST"), WantBest);
  EXPECT_EQ(summaryLine(Final.Stdout, "METRIC"), WantMetric);
  // The crashed attempts left warm durable state behind: the final run
  // replayed journal records instead of starting from evaluation zero.
  std::string Evals = summaryLine(Final.Stdout, "EVALS");
  EXPECT_NE(Evals.find("REPLAYED"), std::string::npos);
  EXPECT_EQ(Evals.find("REPLAYED 0"), std::string::npos)
      << "resume replayed nothing: " << Evals;

  // Trajectory equivalence, not just the endpoint: the recovered journal
  // must contain byte-for-byte the same record sequence the uninterrupted
  // run wrote (torn tails re-evaluated and re-appended identically).
  auto RefScan = RecordLog::scan(RefJournal);
  auto TortScan = RecordLog::scan(Journal);
  ASSERT_TRUE(RefScan.ok()) << RefScan.message();
  ASSERT_TRUE(TortScan.ok()) << TortScan.message();
  EXPECT_FALSE(TortScan->TornTail) << TortScan->Why;
  EXPECT_EQ(TortScan->Records, RefScan->Records);

  // And the shared cache store survived every kill mid-append.
  auto CacheScan =
      RecordLog::scan(search::PersistentEvalCache::storePath(CacheDir));
  ASSERT_TRUE(CacheScan.ok()) << CacheScan.message();
}

TEST(CrashTorture, FlippedByteMakesResumeALocatedHardError) {
  support::TempDir Dir("locus-torture-");
  std::string Journal = Dir.path() + "/j.rlog";
  SubprocessResult First = runVictim({"--journal", Journal});
  ASSERT_TRUE(First.ok()) << First.Stderr;

  // Bit rot in the middle of the journal — not the tearing a crash leaves.
  std::string Image = readFile(Journal);
  auto Scan = RecordLog::scan(Journal);
  ASSERT_TRUE(Scan.ok());
  ASSERT_GE(Scan->Records.size(), 2u);
  uint64_t FirstFrame = RecordLog::headerBlockSize(Scan->Header.size());
  Image[FirstFrame + 8 + 2] ^= 0x20; // payload byte of record 0
  std::ofstream(Journal, std::ios::binary | std::ios::trunc) << Image;

  SubprocessResult Resumed = runVictim({"--journal", Journal, "--resume"});
  EXPECT_EQ(Resumed.Exit, support::SpawnExit::Exited);
  EXPECT_NE(Resumed.ExitCode, 0);
  EXPECT_NE(Resumed.Stderr.find("cannot resume from journal"),
            std::string::npos)
      << Resumed.Stderr;
  EXPECT_NE(Resumed.Stderr.find("CRC mismatch at byte " +
                                std::to_string(FirstFrame)),
            std::string::npos)
      << Resumed.Stderr;
}

TEST(CrashTorture, DiskFullDegradesStoresButNeverTheSearch) {
  if (!support::rlimitsSupported())
    GTEST_SKIP() << "setrlimit unavailable";
  support::TempDir Dir("locus-torture-");
  std::string Journal = Dir.path() + "/j.rlog";
  std::string CacheDir = Dir.path() + "/cache";

  // 4 KiB per file: the journal and the cache store both run out mid-run
  // (the victim ignores SIGXFSZ, so appends fail with EFBIG instead of
  // killing the process). The search itself must still complete.
  SubprocessResult R = runVictim({"--journal", Journal, "--cache-dir",
                                  CacheDir},
                                 /*FileSizeBytes=*/4096);
  ASSERT_TRUE(R.ok()) << R.describe() << "\n" << R.Stderr;
  EXPECT_FALSE(summaryLine(R.Stdout, "BEST").empty());

  // Partial frames were amputated: both stores scan clean, just short.
  auto JScan = RecordLog::scan(Journal);
  ASSERT_TRUE(JScan.ok()) << JScan.message();
  EXPECT_FALSE(JScan->TornTail) << JScan->Why;
  auto CScan = RecordLog::scan(search::PersistentEvalCache::storePath(CacheDir));
  ASSERT_TRUE(CScan.ok()) << CScan.message();
  EXPECT_FALSE(CScan->TornTail) << CScan->Why;

  // Whatever made it to disk is a valid warm start.
  SubprocessResult Again = runVictim({"--journal", Journal, "--resume",
                                      "--cache-dir", CacheDir});
  ASSERT_TRUE(Again.ok()) << Again.Stderr;
}

TEST(CrashTorture, ConcurrentProcessesShareOneCacheDirSafely) {
  support::TempDir Dir("locus-torture-");
  std::string CacheDir = Dir.path() + "/shared";

  // Warm the store once.
  SubprocessResult Seed =
      runVictim({"--journal", Dir.path() + "/seed.rlog", "--cache-dir",
                 CacheDir});
  ASSERT_TRUE(Seed.ok()) << Seed.Stderr;
  std::string SeedCache = summaryLine(Seed.Stdout, "CACHE");
  EXPECT_NE(SeedCache.find("loaded=0"), std::string::npos) << SeedCache;
  EXPECT_EQ(SeedCache.find("appended=0"), std::string::npos) << SeedCache;

  // Two orchestrator processes race on the same directory.
  SubprocessResult A, B;
  std::thread TA([&] {
    A = runVictim({"--journal", Dir.path() + "/a.rlog", "--cache-dir",
                   CacheDir});
  });
  std::thread TB([&] {
    B = runVictim({"--journal", Dir.path() + "/b.rlog", "--cache-dir",
                   CacheDir});
  });
  TA.join();
  TB.join();
  ASSERT_TRUE(A.ok()) << A.describe() << "\n" << A.Stderr;
  ASSERT_TRUE(B.ok()) << B.describe() << "\n" << B.Stderr;

  // Both started warm from the seeded store and served real hits from it.
  for (const SubprocessResult *R : {&A, &B}) {
    std::string Cache = summaryLine(R->Stdout, "CACHE");
    EXPECT_EQ(Cache.find("loaded=0"), std::string::npos) << Cache;
    EXPECT_EQ(Cache.find("hits=0 "), std::string::npos) << Cache;
    EXPECT_NE(Cache.find("degraded=0"), std::string::npos) << Cache;
    // Same workload, warm store: the result matches the seeding run.
    EXPECT_EQ(summaryLine(R->Stdout, "BEST"),
              summaryLine(Seed.Stdout, "BEST"));
  }

  // The store is still fully intact after concurrent writers.
  auto Scan = RecordLog::scan(search::PersistentEvalCache::storePath(CacheDir));
  ASSERT_TRUE(Scan.ok()) << Scan.message();
  EXPECT_FALSE(Scan->TornTail) << Scan->Why;
}

} // namespace
} // namespace locus
