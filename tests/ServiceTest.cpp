//===- ServiceTest.cpp - Tuning-service queue/coordinator/worker tests --------===//
//
// Unit and integration coverage for src/service: the queue record codec,
// the first-writer-wins fold (leases, epochs, stale results, quarantine),
// TaskQueue durability across reopen, the coordinator's recovered-result
// store, lease expiry + reassignment with a revived zombie's stale result
// discarded, the one-coordinator-per-queue-dir flock, graceful degradation
// to in-process evaluation, and — the acceptance anchor — a per-searcher
// proof that `--serve --workers N` replays the bit-identical trajectory
// (BEST, METRIC, journal bytes) of the single-process run, using real
// spawned victim processes on the Fig. 5 DGEMM search.
//
//===----------------------------------------------------------------------===//

#include "src/search/PointCodec.h"
#include "src/service/Coordinator.h"
#include "src/service/TaskQueue.h"
#include "src/service/Worker.h"
#include "src/support/RecordLog.h"
#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace locus {
namespace {

using namespace service;

//===----------------------------------------------------------------------===//
// Record codec
//===----------------------------------------------------------------------===//

TEST(QueueCodec, RoundTripsEveryKind) {
  QueueRecord Task;
  Task.K = QueueRecord::Kind::Task;
  Task.Id = 7;
  Task.Digest = 0xdeadbeefcafef00dull;
  Task.Body = "a = i:8\nb = i:3\n";
  auto T2 = parseQueueRecord(encodeQueueRecord(Task));
  ASSERT_TRUE(T2.ok()) << T2.message();
  EXPECT_EQ(T2->K, QueueRecord::Kind::Task);
  EXPECT_EQ(T2->Id, 7u);
  EXPECT_EQ(T2->Digest, 0xdeadbeefcafef00dull);
  EXPECT_EQ(T2->Body, Task.Body);

  QueueRecord Lease;
  Lease.K = QueueRecord::Kind::Lease;
  Lease.Id = 7;
  Lease.Epoch = 2;
  Lease.Worker = "w0.3";
  auto L2 = parseQueueRecord(encodeQueueRecord(Lease));
  ASSERT_TRUE(L2.ok()) << L2.message();
  EXPECT_EQ(L2->K, QueueRecord::Kind::Lease);
  EXPECT_EQ(L2->Epoch, 2u);
  EXPECT_EQ(L2->Worker, "w0.3");

  QueueRecord Hb = Lease;
  Hb.K = QueueRecord::Kind::Heartbeat;
  auto H2 = parseQueueRecord(encodeQueueRecord(Hb));
  ASSERT_TRUE(H2.ok()) << H2.message();
  EXPECT_EQ(H2->K, QueueRecord::Kind::Heartbeat);

  QueueRecord Exp;
  Exp.K = QueueRecord::Kind::Expire;
  Exp.Id = 7;
  Exp.Epoch = 2;
  auto E2 = parseQueueRecord(encodeQueueRecord(Exp));
  ASSERT_TRUE(E2.ok()) << E2.message();
  EXPECT_EQ(E2->K, QueueRecord::Kind::Expire);
  EXPECT_EQ(E2->Epoch, 2u);

  // A success result must survive with full double precision; a failure
  // result must carry its taxonomy kind and detail body.
  QueueRecord Res;
  Res.K = QueueRecord::Kind::Result;
  Res.Id = 7;
  Res.Epoch = 2;
  Res.Worker = "w0.3";
  Res.Out = search::EvalOutcome::success(12345.6789012345678);
  auto R2 = parseQueueRecord(encodeQueueRecord(Res));
  ASSERT_TRUE(R2.ok()) << R2.message();
  EXPECT_EQ(R2->Out.Failure, search::FailureKind::None);
  EXPECT_EQ(R2->Out.Metric, 12345.6789012345678);

  Res.Out = search::EvalOutcome::fail(search::FailureKind::RuntimeTrap,
                                      "trap at pc 42\nbacktrace line 2");
  auto R3 = parseQueueRecord(encodeQueueRecord(Res));
  ASSERT_TRUE(R3.ok()) << R3.message();
  EXPECT_EQ(R3->Out.Failure, search::FailureKind::RuntimeTrap);
  EXPECT_EQ(R3->Out.Detail, "trap at pc 42\nbacktrace line 2");

  QueueRecord Quar;
  Quar.K = QueueRecord::Kind::Quarantine;
  Quar.Id = 9;
  Quar.Body = "3 distinct workers died";
  auto Q2 = parseQueueRecord(encodeQueueRecord(Quar));
  ASSERT_TRUE(Q2.ok()) << Q2.message();
  EXPECT_EQ(Q2->K, QueueRecord::Kind::Quarantine);
  EXPECT_EQ(Q2->Id, 9u);
  EXPECT_EQ(Q2->Body, "3 distinct workers died");

  QueueRecord Shut;
  Shut.K = QueueRecord::Kind::Shutdown;
  auto S2 = parseQueueRecord(encodeQueueRecord(Shut));
  ASSERT_TRUE(S2.ok()) << S2.message();
  EXPECT_EQ(S2->K, QueueRecord::Kind::Shutdown);
}

TEST(QueueCodec, RejectsMalformedPayloads) {
  EXPECT_FALSE(parseQueueRecord("").ok());
  EXPECT_FALSE(parseQueueRecord("frobnicate 1 2 3").ok());
  EXPECT_FALSE(parseQueueRecord("lease").ok());           // missing fields
  EXPECT_FALSE(parseQueueRecord("lease x 0 w").ok());     // non-numeric id
  EXPECT_FALSE(parseQueueRecord("result 1 0 w nope 1").ok()); // bad kind
}

TEST(QueueCodec, HeaderRoundTrip) {
  std::string H = makeQueueHeader(0x0123456789abcdefull, 0xfedcba9876543210ull);
  auto Info = parseQueueHeader(H);
  ASSERT_TRUE(Info.ok()) << Info.message();
  EXPECT_EQ(Info->SpaceFingerprint, 0x0123456789abcdefull);
  EXPECT_EQ(Info->ConfigDigest, 0xfedcba9876543210ull);
  EXPECT_FALSE(parseQueueHeader("locus-journal v1\nwhatever").ok());
  EXPECT_FALSE(parseQueueHeader("").ok());
}

//===----------------------------------------------------------------------===//
// The fold (reducer) semantics
//===----------------------------------------------------------------------===//

QueueRecord taskRec(uint64_t Id, const std::string &Body) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Task;
  R.Id = Id;
  R.Body = Body;
  return R;
}

QueueRecord leaseRec(uint64_t Id, uint64_t Epoch, const std::string &W) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Lease;
  R.Id = Id;
  R.Epoch = Epoch;
  R.Worker = W;
  return R;
}

QueueRecord expireRec(uint64_t Id, uint64_t Epoch) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Expire;
  R.Id = Id;
  R.Epoch = Epoch;
  return R;
}

QueueRecord resultRec(uint64_t Id, uint64_t Epoch, const std::string &W,
                      double Metric) {
  QueueRecord R;
  R.K = QueueRecord::Kind::Result;
  R.Id = Id;
  R.Epoch = Epoch;
  R.Worker = W;
  R.Out = search::EvalOutcome::success(Metric);
  return R;
}

TEST(QueueFold, FirstLeaseOfAnEpochWins) {
  QueueState S;
  S.apply(taskRec(1, "p"));
  ASSERT_NE(S.find(1), nullptr);
  EXPECT_TRUE(S.find(1)->claimable());

  S.apply(leaseRec(1, 0, "alice"));
  S.apply(leaseRec(1, 0, "bob")); // optimistic claim that lost the race
  EXPECT_EQ(S.find(1)->LeaseWorker, "alice");
  EXPECT_FALSE(S.find(1)->claimable());

  // The losing claimant's result is discarded, not committed.
  S.apply(resultRec(1, 0, "bob", 9.0));
  EXPECT_FALSE(S.find(1)->Done);
  EXPECT_EQ(S.find(1)->StaleResults, 1u);
  EXPECT_EQ(S.StaleResultsDiscarded, 1u);

  S.apply(resultRec(1, 0, "alice", 4.0));
  ASSERT_TRUE(S.find(1)->Done);
  EXPECT_EQ(S.find(1)->Out.Metric, 4.0);
  EXPECT_EQ(S.find(1)->DoneWorker, "alice");
}

TEST(QueueFold, ExpiryBumpsEpochAndZombieResultsAreDiscarded) {
  QueueState S;
  S.apply(taskRec(1, "p"));
  S.apply(leaseRec(1, 0, "zombie"));
  EXPECT_EQ(S.find(1)->Epoch, 0u);

  // The coordinator judged the lease dead: epoch bumps, task reopens.
  S.apply(expireRec(1, 0));
  EXPECT_EQ(S.find(1)->Epoch, 1u);
  EXPECT_TRUE(S.find(1)->claimable());

  // A stale expire (already-bumped epoch) must be a no-op.
  S.apply(expireRec(1, 0));
  EXPECT_EQ(S.find(1)->Epoch, 1u);

  // The zombie's lease for the old epoch no longer claims anything.
  S.apply(leaseRec(1, 0, "zombie"));
  EXPECT_TRUE(S.find(1)->claimable());

  S.apply(leaseRec(1, 1, "healthy"));
  S.apply(resultRec(1, 1, "healthy", 7.0));
  ASSERT_TRUE(S.find(1)->Done);
  EXPECT_EQ(S.find(1)->Out.Metric, 7.0);

  // The zombie revives and posts its epoch-0 result: first-writer-wins
  // discards it — a task is never double-committed.
  S.apply(resultRec(1, 0, "zombie", 3.0));
  EXPECT_EQ(S.find(1)->Out.Metric, 7.0);
  EXPECT_EQ(S.find(1)->DoneWorker, "healthy");
  EXPECT_EQ(S.find(1)->StaleResults, 1u);
  EXPECT_EQ(S.StaleResultsDiscarded, 1u);
}

TEST(QueueFold, QuarantineCompletesTheTaskAsAClassifiedFailure) {
  QueueState S;
  S.apply(taskRec(3, "p"));
  S.apply(leaseRec(3, 0, "w"));
  QueueRecord Q;
  Q.K = QueueRecord::Kind::Quarantine;
  Q.Id = 3;
  Q.Body = "3 distinct workers died evaluating it";
  S.apply(Q);
  const TaskState *T = S.find(3);
  ASSERT_NE(T, nullptr);
  EXPECT_TRUE(T->Done);
  EXPECT_TRUE(T->Quarantined);
  EXPECT_EQ(T->Out.Failure, search::FailureKind::RuntimeTrap);
  EXPECT_NE(T->Out.Detail.find("3 distinct workers"), std::string::npos);
  // Late results for a quarantined task are stale by definition.
  S.apply(resultRec(3, 0, "w", 1.0));
  EXPECT_TRUE(T->Quarantined);
  EXPECT_EQ(S.StaleResultsDiscarded, 1u);
}

TEST(QueueFold, FirstClaimableIsLowestOpenId) {
  QueueState S;
  S.apply(taskRec(5, "a"));
  S.apply(taskRec(2, "b"));
  S.apply(taskRec(9, "c"));
  ASSERT_NE(S.firstClaimable(), nullptr);
  EXPECT_EQ(S.firstClaimable()->Id, 2u);
  S.apply(leaseRec(2, 0, "w"));
  EXPECT_EQ(S.firstClaimable()->Id, 5u);
}

//===----------------------------------------------------------------------===//
// TaskQueue durability
//===----------------------------------------------------------------------===//

TEST(TaskQueueDurability, StateSurvivesReopenAndReFold) {
  support::TempDir Dir("locus-queue-");
  ASSERT_TRUE(Dir.valid());
  TaskQueueOptions Opts;
  Opts.Dir = Dir.path();
  Opts.Header = makeQueueHeader(11, 22);

  auto Q = TaskQueue::open(Opts);
  ASSERT_TRUE(Q.ok()) << Q.message();
  ASSERT_TRUE(Q->announceTask(1, "a = i:8\n", 0x1234).ok());
  ASSERT_TRUE(Q->claim(1, 0, "w1").ok());
  ASSERT_TRUE(Q->heartbeat(1, 0, "w1").ok());
  ASSERT_TRUE(
      Q->postResult(1, 0, "w1", search::EvalOutcome::success(99.5)).ok());
  ASSERT_TRUE(Q->announceTask(2, "a = i:16\n", 0x5678).ok());

  // A second handle (another process, as far as the file is concerned)
  // folds the identical state from the bytes alone.
  auto Q2 = TaskQueue::open(Opts);
  ASSERT_TRUE(Q2.ok()) << Q2.message();
  QueueState S;
  auto N = Q2->poll(S);
  ASSERT_TRUE(N.ok()) << N.message();
  EXPECT_EQ(*N, 5u);
  ASSERT_NE(S.find(1), nullptr);
  EXPECT_TRUE(S.find(1)->Done);
  EXPECT_EQ(S.find(1)->Out.Metric, 99.5);
  EXPECT_EQ(S.find(1)->PointText, "a = i:8\n");
  EXPECT_EQ(S.find(1)->Digest, 0x1234u);
  ASSERT_NE(S.find(2), nullptr);
  EXPECT_TRUE(S.find(2)->claimable());

  // poll() is incremental: nothing new means zero records re-applied.
  auto Again = Q2->poll(S);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(*Again, 0u);
}

TEST(TaskQueueDurability, RefusesAQueueWrittenUnderADifferentHeader) {
  support::TempDir Dir("locus-queue-");
  ASSERT_TRUE(Dir.valid());
  TaskQueueOptions Opts;
  Opts.Dir = Dir.path();
  Opts.Header = makeQueueHeader(11, 22);
  ASSERT_TRUE(TaskQueue::open(Opts).ok());

  TaskQueueOptions Foreign = Opts;
  Foreign.Header = makeQueueHeader(33, 44);
  auto Refused = TaskQueue::open(Foreign);
  EXPECT_FALSE(Refused.ok());

  // Workers open without the match requirement and diff the parsed header
  // themselves; the file's actual header must be surfaced to them.
  Foreign.RequireHeaderMatch = false;
  auto Worker = TaskQueue::open(Foreign);
  ASSERT_TRUE(Worker.ok()) << Worker.message();
  auto Info = parseQueueHeader(Worker->header());
  ASSERT_TRUE(Info.ok());
  EXPECT_EQ(Info->SpaceFingerprint, 11u);
}

TEST(TaskQueueDurability, CompactDropShutdownRevivesACompletedQueue) {
  support::TempDir Dir("locus-queue-");
  ASSERT_TRUE(Dir.valid());
  TaskQueueOptions Opts;
  Opts.Dir = Dir.path();
  Opts.Header = makeQueueHeader(1, 2);
  auto Q = TaskQueue::open(Opts);
  ASSERT_TRUE(Q.ok()) << Q.message();
  ASSERT_TRUE(Q->announceTask(1, "p", 7).ok());
  ASSERT_TRUE(Q->claim(1, 0, "w").ok());
  ASSERT_TRUE(Q->postResult(1, 0, "w", search::EvalOutcome::success(3)).ok());
  ASSERT_TRUE(Q->announceShutdown().ok());

  QueueState S;
  ASSERT_TRUE(Q->poll(S).ok());
  EXPECT_TRUE(S.ShutdownSeen);

  // Serving the dir again: the shutdown record is compacted away, every
  // prior task and result survives as the warm recovered store.
  ASSERT_TRUE(Q->compactDropShutdown().ok());
  QueueState S2;
  ASSERT_TRUE(Q->poll(S2).ok());
  EXPECT_FALSE(S2.ShutdownSeen);
  ASSERT_NE(S2.find(1), nullptr);
  EXPECT_TRUE(S2.find(1)->Done);
  EXPECT_EQ(S2.find(1)->Out.Metric, 3.0);
}

//===----------------------------------------------------------------------===//
// Coordinator + worker integration (in-process worker threads)
//===----------------------------------------------------------------------===//

search::Space twoParamSpace() {
  search::Space S;
  search::ParamDef A;
  A.Id = "a";
  A.Label = "a";
  A.Kind = search::ParamKind::Pow2;
  A.Min = 2;
  A.Max = 64;
  S.Params.push_back(A);
  search::ParamDef B;
  B.Id = "b";
  B.Label = "b";
  B.Kind = search::ParamKind::IntRange;
  B.Min = 0;
  B.Max = 15;
  S.Params.push_back(B);
  return S;
}

search::Point makePoint(int64_t A, int64_t B) {
  search::Point P;
  P.Values["a"] = A;
  P.Values["b"] = B;
  return P;
}

/// Deterministic toy objective: metric = 100a + b.
search::EvalOutcome toyAssess(const search::Point &P) {
  return search::EvalOutcome::success(
      static_cast<double>(100 * P.getInt("a") + P.getInt("b")));
}

/// A fallback that records how often the coordinator bailed to it.
class CountingFallback : public search::Objective {
public:
  search::EvalOutcome assess(const search::Point &P) override {
    ++Calls;
    return toyAssess(P);
  }
  std::atomic<int> Calls{0};
};

TEST(Coordinator, SecondCoordinatorOnTheSameQueueDirIsRefused) {
  support::TempDir Dir("locus-svc-");
  ASSERT_TRUE(Dir.valid());
  CoordinatorOptions Opts;
  Opts.QueueDir = Dir.path();
  Opts.SpaceFingerprint = 1;
  Opts.ConfigDigest = 2;
  auto First = Coordinator::start(Opts);
  ASSERT_TRUE(First.ok()) << First.message();

  auto Second = Coordinator::start(Opts);
  ASSERT_FALSE(Second.ok());
  EXPECT_NE(Second.message().find("already served"), std::string::npos)
      << Second.message();
  EXPECT_NE(Second.message().find("coordinator.lock"), std::string::npos)
      << Second.message();

  // Releasing the first coordinator releases the flock with it.
  (*First)->shutdown();
  First->reset();
  CoordinatorOptions Fresh = Opts;
  Fresh.QueueDir = Dir.path() + "/fresh";
  auto Third = Coordinator::start(Fresh);
  EXPECT_TRUE(Third.ok()) << Third.message();
}

TEST(Coordinator, ExternalWorkerServesAssessmentsInProposalOrder) {
  support::TempDir Dir("locus-svc-");
  ASSERT_TRUE(Dir.valid());
  search::Space S = twoParamSpace();

  CoordinatorOptions Opts;
  Opts.QueueDir = Dir.path();
  Opts.SpaceFingerprint = S.fingerprint();
  Opts.ConfigDigest = 42;
  Opts.PollSeconds = 0.005;
  Opts.LeaseTimeoutSeconds = 20;   // nothing should expire here
  Opts.DegradeGraceSeconds = 20;   // nor degrade
  auto C = Coordinator::start(Opts);
  ASSERT_TRUE(C.ok()) << C.message();

  search::LambdaObjective Obj(
      search::LambdaObjective::OutcomeFn(toyAssess), /*ThreadSafe=*/true);
  WorkerOptions WOpts;
  WOpts.QueueDir = Dir.path();
  WOpts.WorkerId = "thread-worker";
  WOpts.SpaceFingerprint = S.fingerprint();
  WOpts.HeartbeatSeconds = 0.05;
  WOpts.PollSeconds = 0.005;
  Expected<WorkerStats> WR = Expected<WorkerStats>::error("never ran");
  std::thread Worker([&] { WR = runWorker(S, Obj, WOpts); });

  CountingFallback Fallback;
  std::vector<search::Point> Points = {makePoint(8, 3), makePoint(16, 0),
                                       makePoint(4, 15)};
  for (const search::Point &P : Points) {
    search::EvalOutcome Out = (*C)->assess(P, Fallback);
    EXPECT_TRUE(Out.ok());
    EXPECT_EQ(Out.Metric, toyAssess(P).Metric);
  }
  EXPECT_EQ(Fallback.Calls.load(), 0);

  (*C)->shutdown(); // the shutdown record retires the worker loop
  Worker.join();
  ASSERT_TRUE(WR.ok()) << WR.message();
  EXPECT_EQ(WR->TasksEvaluated, 3u);

  ServiceStats Stats = (*C)->stats();
  EXPECT_EQ(Stats.TasksSubmitted, 3u);
  EXPECT_EQ(Stats.WorkerResults, 3u);
  EXPECT_EQ(Stats.LocalFallbackEvals, 0u);
  EXPECT_FALSE(Stats.Degraded);
}

TEST(Coordinator, RecoveredResultsAreServedWithoutReEvaluation) {
  support::TempDir Dir("locus-svc-");
  ASSERT_TRUE(Dir.valid());
  search::Space S = twoParamSpace();
  search::Point P = makePoint(32, 5);
  std::string Text = search::serializePoint(P);

  // A previous coordinator's life: the task was announced, claimed, and the
  // result committed — then the coordinator was SIGKILLed before journaling.
  {
    TaskQueueOptions QOpts;
    QOpts.Dir = Dir.path();
    QOpts.Header = makeQueueHeader(S.fingerprint(), 42);
    auto Q = TaskQueue::open(QOpts);
    ASSERT_TRUE(Q.ok()) << Q.message();
    ASSERT_TRUE(Q->announceTask(1, Text, 0).ok());
    ASSERT_TRUE(Q->claim(1, 0, "w-before-crash").ok());
    ASSERT_TRUE(
        Q->postResult(1, 0, "w-before-crash", search::EvalOutcome::success(555))
            .ok());
  }

  CoordinatorOptions Opts;
  Opts.QueueDir = Dir.path();
  Opts.SpaceFingerprint = S.fingerprint();
  Opts.ConfigDigest = 42;
  auto C = Coordinator::start(Opts);
  ASSERT_TRUE(C.ok()) << C.message();

  // The finished-but-unjournaled evaluation is never redone: no worker is
  // attached, yet the assessment returns instantly from the recovered store.
  CountingFallback Fallback;
  search::EvalOutcome Out = (*C)->assess(P, Fallback);
  EXPECT_EQ(Out.Metric, 555.0);
  EXPECT_EQ(Fallback.Calls.load(), 0);
  ServiceStats Stats = (*C)->stats();
  EXPECT_EQ(Stats.RecoveredResults, 1u);
  (*C)->shutdown();
}

TEST(Coordinator, StalledLeaseIsReassignedAndTheZombieResultDiscarded) {
  support::TempDir Dir("locus-svc-");
  ASSERT_TRUE(Dir.valid());
  search::Space S = twoParamSpace();
  search::Point P = makePoint(8, 1);

  CoordinatorOptions Opts;
  Opts.QueueDir = Dir.path();
  Opts.SpaceFingerprint = S.fingerprint();
  Opts.ConfigDigest = 42;
  Opts.PollSeconds = 0.005;
  Opts.LeaseTimeoutSeconds = 0.25; // judged on heartbeat *arrival* silence
  Opts.DegradeGraceSeconds = 60;   // degradation must not rescue this test
  auto C = Coordinator::start(Opts);
  ASSERT_TRUE(C.ok()) << C.message();

  CountingFallback Fallback;
  search::EvalOutcome Out;
  std::thread Assessor([&] { Out = (*C)->assess(P, Fallback); });

  // Drive the worker protocol by hand for exact control of the timeline.
  TaskQueueOptions QOpts;
  QOpts.Dir = Dir.path();
  QOpts.RequireHeaderMatch = false;
  auto Q = TaskQueue::open(QOpts);
  ASSERT_TRUE(Q.ok()) << Q.message();

  auto waitFor = [&](const std::function<bool(const QueueState &)> &Pred) {
    QueueState View;
    for (int I = 0; I < 2000; ++I) {
      View = QueueState{};
      EXPECT_TRUE(Q->poll(View).ok());
      if (Pred(View))
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  // The zombie claims, heartbeats once, then goes silent.
  ASSERT_TRUE(waitFor(
      [](const QueueState &V) { return V.firstClaimable() != nullptr; }));
  ASSERT_TRUE(Q->claim(1, 0, "zombie").ok());
  ASSERT_TRUE(Q->heartbeat(1, 0, "zombie").ok());

  // Heartbeat-then-stall: the coordinator expires the lease and reopens the
  // task at epoch 1.
  ASSERT_TRUE(waitFor([](const QueueState &V) {
    const TaskState *T = V.find(1);
    return T && !T->Done && T->Epoch == 1 && T->claimable();
  }));

  // A healthy worker claims the reassigned epoch and commits.
  ASSERT_TRUE(Q->claim(1, 1, "healthy").ok());
  ASSERT_TRUE(
      Q->postResult(1, 1, "healthy", search::EvalOutcome::success(777)).ok());
  Assessor.join();
  EXPECT_EQ(Out.Metric, 777.0);
  EXPECT_EQ(Fallback.Calls.load(), 0);

  // The zombie revives and posts its stale epoch-0 result: discarded and
  // counted, never double-committed.
  ASSERT_TRUE(
      Q->postResult(1, 0, "zombie", search::EvalOutcome::success(111)).ok());
  ASSERT_TRUE(waitFor([](const QueueState &V) {
    const TaskState *T = V.find(1);
    return T && T->Done && T->Out.Metric == 777.0 && T->StaleResults >= 1;
  }));

  // The coordinator's stats mirror the fold: an expiry happened, the stale
  // result was discarded, exactly one result was accepted.
  bool StatsSettled = false;
  for (int I = 0; I < 1000 && !StatsSettled; ++I) {
    ServiceStats Stats = (*C)->stats();
    StatsSettled = Stats.LeaseExpiries >= 1 && Stats.StaleResultsDiscarded >= 1;
    if (!StatsSettled)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(StatsSettled);
  EXPECT_EQ((*C)->stats().WorkerResults, 1u);
  (*C)->shutdown();
}

TEST(Coordinator, DegradesToInProcessEvaluationWhenNoWorkerExists) {
  support::TempDir Dir("locus-svc-");
  ASSERT_TRUE(Dir.valid());
  CoordinatorOptions Opts;
  Opts.QueueDir = Dir.path();
  Opts.SpaceFingerprint = 1;
  Opts.ConfigDigest = 2;
  Opts.PollSeconds = 0.005;
  Opts.LeaseTimeoutSeconds = 5;
  Opts.DegradeGraceSeconds = 0.1; // no workers will ever show up
  auto C = Coordinator::start(Opts);
  ASSERT_TRUE(C.ok()) << C.message();

  CountingFallback Fallback;
  search::Point P = makePoint(8, 2);
  search::EvalOutcome Out = (*C)->assess(P, Fallback);
  EXPECT_TRUE(Out.ok());
  EXPECT_EQ(Out.Metric, toyAssess(P).Metric);
  EXPECT_EQ(Fallback.Calls.load(), 1);

  ServiceStats Stats = (*C)->stats();
  EXPECT_TRUE(Stats.Degraded);
  EXPECT_EQ(Stats.LocalFallbackEvals, 1u);

  // Once degraded, later assessments fall back immediately.
  (void)(*C)->assess(makePoint(4, 4), Fallback);
  EXPECT_EQ(Fallback.Calls.load(), 2);
  EXPECT_EQ((*C)->stats().LocalFallbackEvals, 2u);
  (*C)->shutdown();
}

TEST(Worker, RefusesAQueuePinnedToAForeignSpace) {
  support::TempDir Dir("locus-svc-");
  ASSERT_TRUE(Dir.valid());
  TaskQueueOptions QOpts;
  QOpts.Dir = Dir.path();
  QOpts.Header = makeQueueHeader(0xaaaa, 0xbbbb);
  ASSERT_TRUE(TaskQueue::open(QOpts).ok());

  search::Space S = twoParamSpace();
  search::LambdaObjective Obj{search::LambdaObjective::OutcomeFn(toyAssess)};
  WorkerOptions WOpts;
  WOpts.QueueDir = Dir.path();
  WOpts.SpaceFingerprint = S.fingerprint(); // != 0xaaaa
  auto R = runWorker(S, Obj, WOpts);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("foreign"), std::string::npos) << R.message();
}

//===----------------------------------------------------------------------===//
// The determinism anchor: serve mode replays the --jobs 1 trajectory,
// asserted for every searcher on the real DGEMM search (spawned victims).
//===----------------------------------------------------------------------===//

std::string summaryLine(const std::string &Stdout, const std::string &Tag) {
  std::istringstream In(Stdout);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.compare(0, Tag.size() + 1, Tag + " ") == 0)
      return Line.substr(Tag.size() + 1);
  return "";
}

support::SubprocessResult runVictim(std::vector<std::string> Args) {
  support::SubprocessOptions Opts;
  Opts.Argv.push_back(LOCUS_SEARCH_VICTIM);
  for (std::string &A : Args)
    Opts.Argv.push_back(std::move(A));
  Opts.Limits.WallClockSeconds = 240;
  return support::runSubprocess(Opts);
}

TEST(ServiceDeterminism, ServeModeReplaysTheLocalTrajectoryForEverySearcher) {
  support::TempDir Dir("locus-svc-det-");
  ASSERT_TRUE(Dir.valid());

  const char *Searchers[] = {"exhaustive", "random", "hillclimb",
                             "de",         "bandit", "tpe"};
  for (const char *Name : Searchers) {
    SCOPED_TRACE(Name);
    std::string Local = Dir.path() + "/" + Name + "-local.rlog";
    std::string Served = Dir.path() + "/" + Name + "-served.rlog";

    support::SubprocessResult Ref = runVictim(
        {"--searcher", Name, "--journal", Local, "--budget", "8", "--seed",
         "5"});
    ASSERT_TRUE(Ref.ok()) << Ref.describe() << "\n" << Ref.Stderr;

    support::SubprocessResult Srv = runVictim(
        {"--searcher", Name, "--journal", Served, "--budget", "8", "--seed",
         "5", "--serve", "2", "--queue-dir", Dir.path() + "/" + Name + "-q"});
    ASSERT_TRUE(Srv.ok()) << Srv.describe() << "\n" << Srv.Stderr;

    // Identical trajectory: same best point, same metric, same evaluation
    // counts...
    EXPECT_EQ(summaryLine(Srv.Stdout, "BEST"), summaryLine(Ref.Stdout, "BEST"));
    EXPECT_EQ(summaryLine(Srv.Stdout, "METRIC"),
              summaryLine(Ref.Stdout, "METRIC"));
    EXPECT_EQ(summaryLine(Srv.Stdout, "EVALS"),
              summaryLine(Ref.Stdout, "EVALS"));
    ASSERT_FALSE(summaryLine(Srv.Stdout, "BEST").empty());

    // ...and bit-identical journal records (the full evaluation history in
    // commit order, not just the endpoint).
    auto RefScan = support::RecordLog::scan(Local);
    auto SrvScan = support::RecordLog::scan(Served);
    ASSERT_TRUE(RefScan.ok()) << RefScan.message();
    ASSERT_TRUE(SrvScan.ok()) << SrvScan.message();
    EXPECT_FALSE(RefScan->Records.empty());
    EXPECT_EQ(RefScan->Records, SrvScan->Records);
    EXPECT_EQ(RefScan->Header, SrvScan->Header);

    // The work actually went through the fleet.
    std::string Svc = summaryLine(Srv.Stdout, "SERVICE");
    ASSERT_FALSE(Svc.empty());
    EXPECT_EQ(Svc.find("worker=0 "), std::string::npos) << Svc;
  }
}

} // namespace
} // namespace locus
