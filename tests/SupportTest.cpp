//===- SupportTest.cpp - support library tests ---------------------------------===//

#include "src/support/Error.h"
#include "src/support/Hashing.h"
#include "src/support/Rng.h"
#include "src/support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace locus {
namespace {

TEST(Support, ExpectedAndStatus) {
  Expected<int> Ok(42);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);
  Expected<int> Err = Expected<int>::error("boom");
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.message(), "boom");

  Status S = Status::success();
  EXPECT_TRUE(S.ok());
  Status F = Status::error("bad");
  EXPECT_FALSE(F.ok());
  EXPECT_EQ(F.message(), "bad");
}

TEST(Support, Fnv1aIsStable) {
  // Known value so hashes stay comparable across platforms and runs (the
  // region-coherence keys depend on this).
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), fnv1a("a"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  uint64_t H = hashCombine(fnv1a("x"), 7);
  EXPECT_NE(H, fnv1a("x"));
}

TEST(Support, RngDeterminismAndRanges) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
  // All values of a small range appear.
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.range(0, 3));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(Support, RngBoundedIsUnbiased) {
  // range() uses Lemire's rejection sampler, not a modulo reduction. A
  // modulo over a span that does not divide 2^64 systematically favors the
  // low residues; for a span of 3 the worst-case bucket skew of `next() % 3`
  // is tiny, so instead check a statistical property that the rejection
  // sampler guarantees by construction and a biased reducer only
  // approximates: every bucket of several coprime spans stays within 4
  // sigma of the uniform expectation.
  for (int64_t Span : {3, 5, 7, 11, 48}) {
    Rng R(0xfeedULL + static_cast<uint64_t>(Span));
    const int Draws = 60000;
    std::vector<int> Buckets(static_cast<size_t>(Span), 0);
    for (int I = 0; I < Draws; ++I) {
      int64_t V = R.range(0, Span - 1);
      ASSERT_GE(V, 0);
      ASSERT_LT(V, Span);
      ++Buckets[static_cast<size_t>(V)];
    }
    double Expect = static_cast<double>(Draws) / static_cast<double>(Span);
    double Sigma = std::sqrt(Expect * (1.0 - 1.0 / static_cast<double>(Span)));
    for (int64_t B = 0; B < Span; ++B)
      EXPECT_NEAR(Buckets[static_cast<size_t>(B)], Expect, 4 * Sigma)
          << "span " << Span << " bucket " << B;
  }
}

TEST(Support, RngRangeCoversFullInt64Domain) {
  // The span Hi - Lo + 1 == 0 wraps only for the full 64-bit domain; it
  // must not crash or truncate.
  Rng R(41);
  int64_t Lo = std::numeric_limits<int64_t>::min();
  int64_t Hi = std::numeric_limits<int64_t>::max();
  bool SawNegative = false, SawPositive = false;
  for (int I = 0; I < 64; ++I) {
    int64_t V = R.range(Lo, Hi);
    SawNegative |= V < 0;
    SawPositive |= V > 0;
  }
  EXPECT_TRUE(SawNegative);
  EXPECT_TRUE(SawPositive);
}

TEST(Support, RngShuffleIsAPermutation) {
  Rng R(9);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Support, StringUtils) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(trimString("  x y\t\n"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(joinStrings({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(joinStrings({}, "."), "");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("ar", "bar"));
}

} // namespace
} // namespace locus
