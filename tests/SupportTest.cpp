//===- SupportTest.cpp - support library tests ---------------------------------===//

#include "src/support/Error.h"
#include "src/support/Hashing.h"
#include "src/support/Rng.h"
#include "src/support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

namespace locus {
namespace {

TEST(Support, ExpectedAndStatus) {
  Expected<int> Ok(42);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);
  Expected<int> Err = Expected<int>::error("boom");
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.message(), "boom");

  Status S = Status::success();
  EXPECT_TRUE(S.ok());
  Status F = Status::error("bad");
  EXPECT_FALSE(F.ok());
  EXPECT_EQ(F.message(), "bad");
}

TEST(Support, Fnv1aIsStable) {
  // Known value so hashes stay comparable across platforms and runs (the
  // region-coherence keys depend on this).
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), fnv1a("a"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  uint64_t H = hashCombine(fnv1a("x"), 7);
  EXPECT_NE(H, fnv1a("x"));
}

TEST(Support, RngDeterminismAndRanges) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
  // All values of a small range appear.
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.range(0, 3));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(Support, RngShuffleIsAPermutation) {
  Rng R(9);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Support, StringUtils) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(trimString("  x y\t\n"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(joinStrings({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(joinStrings({}, "."), "");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("ar", "bar"));
}

} // namespace
} // namespace locus
