//===- ablation_optimizer.cpp - Section IV-C program-optimizer ablation -------===//
//
// Measures the effect of optimizing the Locus program itself (constant
// propagation/folding, query pre-execution, dead-branch elimination) before
// interpretation. The direct program is re-interpreted once per assessed
// variant, so the paper applies these optimizations ahead of the search.
//
// Reported: optimizer statistics on Fig. 11 (Kripke) and Fig. 13 programs,
// the interpretation time per materialized variant with and without the
// optimizer, and a check that both modes produce identical spaces.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/driver/Orchestrator.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusParser.h"
#include "src/locus/Optimizer.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace locus;

namespace {

double timeApplyPoints(const lang::LocusProgram &Prog,
                       const cir::Program &Baseline,
                       const std::map<std::string, std::string> &Snippets,
                       int Iterations) {
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  lang::LocusInterpreter Interp(Prog, Registry);
  search::Space Space;
  {
    auto Clone = Baseline.clone();
    transform::TransformContext TCtx;
    TCtx.Prog = Clone.get();
    TCtx.Snippets = Snippets;
    Interp.extractSpace(*Clone, Space, TCtx);
  }
  Rng R(3);
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Iterations; ++I) {
    search::Point P = search::samplePoint(Space, R);
    auto Variant = Baseline.clone();
    transform::TransformContext TCtx;
    TCtx.Prog = Variant.get();
    TCtx.Snippets = Snippets;
    lang::ExecOutcome O = Interp.applyPoint(*Variant, P, TCtx);
    benchmark::DoNotOptimize(O.TransformsApplied);
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(End - Start).count() /
         Iterations;
}

void reportProgram(const char *Title, const std::string &LocusText,
                   const cir::Program &Baseline,
                   const std::map<std::string, std::string> &Snippets) {
  auto Prog = lang::parseLocusProgram(LocusText);
  if (!Prog.ok()) {
    std::fprintf(stderr, "parse error: %s\n", Prog.message().c_str());
    return;
  }
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();

  auto Clone = Baseline.clone();
  transform::TransformContext TCtx;
  TCtx.Prog = Clone.get();
  TCtx.Snippets = Snippets;
  lang::OptimizeStats Stats;
  std::unique_ptr<lang::LocusProgram> Optimized =
      lang::optimizeLocusProgram(**Prog, *Clone, Registry, TCtx, &Stats);

  // Spaces must agree.
  search::Space RawSpace, OptSpace;
  {
    auto C1 = Baseline.clone();
    transform::TransformContext T1;
    T1.Prog = C1.get();
    T1.Snippets = Snippets;
    lang::LocusInterpreter(*(*Prog), Registry).extractSpace(*C1, RawSpace, T1);
    auto C2 = Baseline.clone();
    transform::TransformContext T2;
    T2.Prog = C2.get();
    T2.Snippets = Snippets;
    lang::LocusInterpreter(*Optimized, Registry)
        .extractSpace(*C2, OptSpace, T2);
  }

  const int Iters = 60;
  double RawUs = timeApplyPoints(**Prog, Baseline, Snippets, Iters);
  double OptUs = timeApplyPoints(*Optimized, Baseline, Snippets, Iters);

  std::printf("%s\n", Title);
  std::printf("  queries substituted %d, constants folded %d, branches "
              "pruned %d, statements removed %d\n",
              Stats.QueriesSubstituted, Stats.ConstantsFolded,
              Stats.BranchesPruned, Stats.StmtsRemoved);
  std::printf("  space: raw %llu vs optimized %llu points (%s)\n",
              (unsigned long long)RawSpace.fullSize(),
              (unsigned long long)OptSpace.fullSize(),
              RawSpace.fullSize() == OptSpace.fullSize() ? "identical"
                                                         : "DIFFER");
  std::printf("  variant materialization: raw %.1f us vs optimized %.1f us "
              "(%.2fx)\n\n",
              RawUs, OptUs, RawUs / OptUs);
}

void runAblation() {
  bench::banner("Ablation: Section IV-C optimizations on Locus programs");

  // Fig. 11: the six-way layout conditional plus queries.
  workloads::KripkeConfig C;
  C.NumZones = 24;
  auto Kripke = bench::mustParse(workloads::kripkeKernelSource(C, "Scattering"));
  reportProgram("Fig. 11 (Kripke Scattering)",
                workloads::kripkeLocusFig11("Scattering"), *Kripke,
                workloads::kripkeSnippets(C, "Scattering"));

  // Fig. 13: query-guarded conditional space on a depth-3 nest.
  std::string Src = workloads::dgemmSource(24, 24, 24);
  size_t Pos = Src.find("loop=matmul");
  Src.replace(Pos, 11, "loop=scop");
  auto Dgemm = bench::mustParse(Src);
  reportProgram("Fig. 13 (generic program, depth-3 nest)",
                workloads::fig13GenericProgram(), *Dgemm, {});

  // Fig. 5: constant propagation through OptSeqs and defs.
  auto Matmul = bench::mustParse(workloads::dgemmSource(24, 24, 24));
  reportProgram("Fig. 5 (tiling choice)", workloads::dgemmLocusFig5(),
                *Matmul, {});
}

void BM_OptimizeFig13(benchmark::State &State) {
  auto Prog = lang::parseLocusProgram(workloads::fig13GenericProgram());
  std::string Src = workloads::dgemmSource(16, 16, 16);
  size_t Pos = Src.find("loop=matmul");
  Src.replace(Pos, 11, "loop=scop");
  auto Baseline = bench::mustParse(Src);
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  for (auto _ : State) {
    auto Clone = Baseline->clone();
    transform::TransformContext TCtx;
    TCtx.Prog = Clone.get();
    auto Optimized =
        lang::optimizeLocusProgram(**Prog, *Clone, Registry, TCtx);
    benchmark::DoNotOptimize(Optimized->CodeRegs.size());
  }
}
BENCHMARK(BM_OptimizeFig13);

} // namespace

int main(int argc, char **argv) {
  runAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
