//===- BenchUtil.h - Shared helpers for the benchmark harnesses -*- C++ -*-===//
///
/// \file
/// Common plumbing for the experiment harnesses in bench/: environment-knob
/// parsing (so quick runs and full paper-scale runs use the same binaries)
/// and small reporting helpers.
///
/// Knobs:
///   LOCUS_BENCH_BUDGET  search assessments per experiment (default varies)
///   LOCUS_BENCH_SIZE    problem-size override
///   LOCUS_BENCH_SCALE   corpus scale for Table I (1.0 = the paper's 856)
///
//===----------------------------------------------------------------------===//
#ifndef LOCUS_BENCH_BENCHUTIL_H
#define LOCUS_BENCH_BENCHUTIL_H

#include "src/cir/Parser.h"
#include "src/eval/Evaluator.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace locus {
namespace bench {

inline int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

inline double envDouble(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  return V ? std::atof(V) : Default;
}

inline std::unique_ptr<cir::Program> mustParse(const std::string &Source) {
  auto P = cir::parseProgram(Source);
  if (!P.ok()) {
    std::fprintf(stderr, "fatal: baseline parse error: %s\n",
                 P.message().c_str());
    std::exit(1);
  }
  return std::move(*P);
}

/// Runs a program once on the given machine; exits on failure.
inline eval::RunResult mustRun(const cir::Program &P,
                               const machine::MachineConfig &M) {
  eval::EvalOptions Opts;
  Opts.Machine = M;
  eval::RunResult R = eval::evaluateProgram(P, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "fatal: evaluation failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return R;
}

inline void banner(const char *Title) {
  std::printf("\n================================================================\n"
              "%s\n"
              "================================================================\n",
              Title);
}

} // namespace bench
} // namespace locus

#endif // LOCUS_BENCH_BENCHUTIL_H
