//===- fig6_dgemm.cpp - Figure 6 (right): DGEMM speedups ---------------------===//
//
// Regenerates the right half of Fig. 6: speedup of Locus, Pluto and the
// vendor-library stand-in (MKL) over the single-core baseline DGEMM, for
// 1..10 cores. Locus runs the Fig. 7 program (interchange + two-level
// hierarchical pow2 tiling + OpenMP schedule OR-block) under the bandit
// (OpenTuner-style) search; Pluto applies its fixed heuristic; the tuned
// kernel is a fixed blocked/parallel/vectorized implementation.
//
// The paper's absolute numbers came from a physical Xeon; here the machine
// is the simulated hierarchy, so only the *shape* is expected to hold:
// Locus >= Pluto everywhere (same transformations, searched parameters),
// and Locus competitive with the tuned library as cores scale.
//
// Knobs: LOCUS_BENCH_SIZE (matrix order, default 64),
//        LOCUS_BENCH_BUDGET (assessments per core count, default 18).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/baseline/Pluto.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace locus;
using bench::banner;

namespace {

struct Row {
  int Cores;
  double Locus, Pluto, Mkl;
};

void runFig6Dgemm() {
  int N = bench::envInt("LOCUS_BENCH_SIZE", 64);
  int Budget = bench::envInt("LOCUS_BENCH_BUDGET", 60);
  banner("Figure 6 (right): DGEMM speedup vs 1-core baseline");
  std::printf("matrix order %d, %d assessments per core count "
              "(paper: 2048, 1000)\n\n",
              N, Budget);

  std::string Source = workloads::dgemmSource(N, N, N);
  auto Baseline = bench::mustParse(Source);
  // The first-level tile range scales with the problem (the paper's 2..512
  // at order 2048 ~ 2..N/4 here).
  auto Prog = lang::parseLocusProgram(
      workloads::dgemmLocusFig7(std::max(8, N / 2)));
  if (!Prog.ok()) {
    std::fprintf(stderr, "locus parse error: %s\n", Prog.message().c_str());
    std::exit(1);
  }

  machine::MachineConfig OneCore = machine::MachineConfig::xeonE5v3();
  OneCore.Cores = 1;
  double BaselineCycles = bench::mustRun(*Baseline, OneCore).Cycles;

  std::vector<Row> Rows;
  std::string BestShape;
  for (int Cores : {1, 2, 4, 6, 8, 10}) {
    machine::MachineConfig M = machine::MachineConfig::xeonE5v3();
    M.Cores = Cores;

    // Locus search.
    driver::OrchestratorOptions Opts;
    Opts.Eval.Machine = M;
    Opts.MaxEvaluations = Budget;
    Opts.SearcherName = "bandit";
    Opts.Seed = 1234 + static_cast<uint64_t>(Cores);
    driver::Orchestrator Orch(**Prog, *Baseline, Opts);
    auto R = Orch.runSearch();
    double LocusCycles =
        R.ok() ? R->BestCycles : std::numeric_limits<double>::infinity();
    if (R.ok() && Cores == 10)
      BestShape = driver::serializePoint(R->Search.Best);

    // Pluto heuristic (same machine).
    baseline::PlutoOptions POpts;
    POpts.L2Tile = true;
    baseline::PlutoOutcome Pluto = baseline::runPluto(*Baseline, "matmul", POpts);
    double PlutoCycles = bench::mustRun(*Pluto.Program, M).Cycles;

    // Tuned-library stand-in.
    auto Mkl = bench::mustParse(baseline::tunedDgemmSource(N, N, N, std::max(8, N / 8)));
    double MklCycles = bench::mustRun(*Mkl, M).Cycles;

    Rows.push_back(Row{Cores, BaselineCycles / LocusCycles,
                       BaselineCycles / PlutoCycles,
                       BaselineCycles / MklCycles});
  }

  std::printf("%-6s %12s %12s %12s\n", "cores", "Locus", "Pluto", "MKL-like");
  for (const Row &R : Rows)
    std::printf("%-6d %11.2fx %11.2fx %11.2fx\n", R.Cores, R.Locus, R.Pluto,
                R.Mkl);

  double AvgRatio = 0;
  for (const Row &R : Rows)
    AvgRatio += R.Locus / R.Pluto;
  AvgRatio /= static_cast<double>(Rows.size());
  std::printf("\nLocus best variant vs Pluto, averaged over core counts: "
              "%.2fx (paper: 3.45x at 2048^3 with 1000 assessments)\n",
              AvgRatio);
  if (!BestShape.empty())
    std::printf("\nbest point at 10 cores:\n%s", BestShape.c_str());
}

/// Microbenchmark: cost of evaluating one DGEMM variant on the simulator.
void BM_EvaluateDgemm(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  auto P = bench::mustParse(workloads::dgemmSource(N, N, N));
  eval::EvalOptions Opts;
  eval::ProgramEvaluator Eval(*P, Opts);
  if (!Eval.prepare().ok())
    State.SkipWithError("prepare failed");
  for (auto _ : State) {
    eval::RunResult R = Eval.run();
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N) * N * N);
}
BENCHMARK(BM_EvaluateDgemm)->Arg(16)->Arg(32)->Arg(48);

} // namespace

int main(int argc, char **argv) {
  runFig6Dgemm();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
