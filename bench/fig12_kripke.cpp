//===- fig12_kripke.cpp - Figure 12: Kripke layouts ----------------------------===//
//
// Regenerates Fig. 12: execution time of the hand-optimized Kripke kernel
// versions vs the Locus-generated ones, for all six data layouts
// (DGZ..ZGD). Locus uses a single skeleton per kernel plus six address
// snippets (BuiltIn.Altdesc) and the Fig. 11 program (interchange to the
// layout's loop order, LICM, scalar replacement, OpenMP). The paper's claim:
// the compact representation reaches performance very close to the six
// hand-optimized versions while keeping one source per kernel.
//
// Knobs: LOCUS_BENCH_SIZE scales the zone count (default 48).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace locus;

namespace {

void runFig12() {
  workloads::KripkeConfig C;
  C.NumZones = bench::envInt("LOCUS_BENCH_SIZE", 48);
  bench::banner("Figure 12: Kripke hand-optimized vs Locus-generated");
  std::printf("moments=%d groups=%d zones=%d directions=%d\n\n", C.NumMoments,
              C.NumGroups, C.NumZones, C.NumDirections);

  const auto &Layouts = workloads::kripkeLayouts();
  double TotalRatio = 0;
  int Measured = 0;

  for (const std::string &Kernel : workloads::kripkeKernels()) {
    auto Baseline = bench::mustParse(workloads::kripkeKernelSource(C, Kernel));
    auto Prog = lang::parseLocusProgram(workloads::kripkeLocusFig11(Kernel));
    if (!Prog.ok()) {
      std::fprintf(stderr, "%s: locus parse error: %s\n", Kernel.c_str(),
                   Prog.message().c_str());
      continue;
    }
    driver::OrchestratorOptions Opts;
    Opts.Snippets = workloads::kripkeSnippets(C, Kernel);
    Opts.InitHook = [&](eval::ProgramEvaluator &E) {
      workloads::initKripkeArrays(E, C);
    };
    driver::Orchestrator Orch(**Prog, *Baseline, Opts);

    // One run per layout (the layout enum is the only search variable;
    // pin it directly, as the paper's Fig. 12 sweeps all six).
    search::Space Space;
    {
      // Extract just to learn the enum parameter id.
      auto Probe = Orch.runSearch();
      if (!Probe.ok()) {
        std::fprintf(stderr, "%s: %s\n", Kernel.c_str(),
                     Probe.message().c_str());
        continue;
      }
      Space = Probe->Space;
    }

    std::printf("%-12s", Kernel.c_str());
    for (size_t I = 0; I < Layouts.size(); ++I)
      std::printf(" %11s", Layouts[I].c_str());
    std::printf("\n");

    std::printf("  %-10s", "locus");
    std::vector<double> LocusCycles(Layouts.size(), 0);
    for (size_t I = 0; I < Layouts.size(); ++I) {
      search::Point P;
      P.Values[Space.Params[0].Id] = static_cast<int64_t>(I);
      auto R = Orch.runPoint(P);
      LocusCycles[I] = R.ok() ? R->Run.Cycles : 0;
      std::printf(" %11.0f", LocusCycles[I]);
    }
    std::printf("\n  %-10s", "hand");
    for (size_t I = 0; I < Layouts.size(); ++I) {
      auto Hand = bench::mustParse(
          workloads::kripkeHandOptimizedSource(C, Kernel, Layouts[I]));
      eval::ProgramEvaluator Eval(*Hand, eval::EvalOptions());
      double Cycles = 0;
      if (Eval.prepare().ok()) {
        workloads::initKripkeArrays(Eval, C);
        eval::RunResult R = Eval.run();
        if (R.Ok)
          Cycles = R.Cycles;
      }
      std::printf(" %11.0f", Cycles);
      if (Cycles > 0 && LocusCycles[I] > 0) {
        TotalRatio += LocusCycles[I] / Cycles;
        ++Measured;
      }
    }
    std::printf("\n\n");
  }
  if (Measured)
    std::printf("Locus/hand cycle ratio averaged over %d kernel-layout "
                "pairs: %.2f (paper: \"very close\", one source instead of "
                "six per kernel)\n",
                Measured, TotalRatio / Measured);
}

void BM_KripkeScatteringVariant(benchmark::State &State) {
  workloads::KripkeConfig C;
  C.NumZones = 24;
  auto Baseline =
      bench::mustParse(workloads::kripkeKernelSource(C, "Scattering"));
  auto Prog = lang::parseLocusProgram(workloads::kripkeLocusFig11("Scattering"));
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  lang::LocusInterpreter Interp(**Prog, Registry);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = Baseline.get();
  TCtx.Snippets = workloads::kripkeSnippets(C, "Scattering");
  Interp.extractSpace(*Baseline, Space, TCtx);
  int64_t Layout = 0;
  for (auto _ : State) {
    search::Point P;
    P.Values[Space.Params[0].Id] = Layout;
    Layout = (Layout + 1) % 6;
    auto Variant = Baseline->clone();
    transform::TransformContext Ctx;
    Ctx.Prog = Variant.get();
    Ctx.Snippets = TCtx.Snippets;
    lang::ExecOutcome O = Interp.applyPoint(*Variant, P, Ctx);
    benchmark::DoNotOptimize(O.TransformsApplied);
  }
}
BENCHMARK(BM_KripkeScatteringVariant);

} // namespace

int main(int argc, char **argv) {
  runFig12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
