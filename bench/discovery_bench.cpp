//===- discovery_bench.cpp - Region-discovery perf snapshot ------------------===//
//
// Times the pragma-free region-discovery pipeline over the unannotated
// PolyBench-style kernels and then tunes the hottest discovered region of
// one kernel end-to-end (discover -> annotate -> generic Fig. 13 program ->
// bandit search), producing the per-PR perf snapshot BENCH_discovery.json.
//
// The snapshot captures, per kernel: nests scanned, verdict counts, the top
// candidate's hotness, and the discovery wall time; plus the search's point
// count, assessments, baseline/best cycles and wall time. Re-run after
// changes that touch analysis/ or the orchestrator and diff the JSON.
//
// Knobs: LOCUS_BENCH_SIZE   (problem size N, default 40),
//        LOCUS_BENCH_BUDGET (search assessments, default 24),
//        LOCUS_BENCH_JSON   (output path, default BENCH_discovery.json;
//                            empty string disables the JSON write).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/analysis/RegionDiscovery.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

using namespace locus;
using bench::banner;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

struct KernelRow {
  std::string Name;
  int Scanned = 0;
  int Selected = 0, Demoted = 0, Rejected = 0;
  double TopHotness = 0;
  double DiscoverMs = 0;
};

struct SearchRow {
  std::string Kernel, Region, Searcher;
  unsigned long long Points = 0;
  int Assessed = 0;
  double BaselineCycles = 0, BestCycles = 0, Speedup = 0;
  double SearchMs = 0;
};

int countVerdict(const analysis::DiscoveryReport &R,
                 analysis::CandidateVerdict V) {
  int N = 0;
  for (const analysis::NestCandidate &C : R.Candidates)
    N += C.Verdict == V ? 1 : 0;
  return N;
}

void writeJson(const std::string &Path, int N, int Budget,
               const std::vector<KernelRow> &Rows, const SearchRow &S) {
  if (Path.empty())
    return;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"discovery\",\n");
  std::fprintf(F, "  \"machine\": \"simulated xeonE5v3\",\n");
  std::fprintf(F, "  \"problem_size\": %d,\n  \"search_budget\": %d,\n", N,
               Budget);
  std::fprintf(F, "  \"kernels\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const KernelRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"nests_scanned\": %d, "
                 "\"selected\": %d, \"demoted\": %d, \"rejected\": %d, "
                 "\"top_hotness\": %.6g, \"discover_ms\": %.3f}%s\n",
                 R.Name.c_str(), R.Scanned, R.Selected, R.Demoted, R.Rejected,
                 R.TopHotness, R.DiscoverMs,
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F,
               "  \"search\": {\"kernel\": \"%s\", \"region\": \"%s\", "
               "\"searcher\": \"%s\", \"points\": %llu, \"assessed\": %d, "
               "\"baseline_cycles\": %.0f, \"best_cycles\": %.0f, "
               "\"speedup\": %.4f, \"search_ms\": %.3f}\n",
               S.Kernel.c_str(), S.Region.c_str(), S.Searcher.c_str(),
               S.Points, S.Assessed, S.BaselineCycles, S.BestCycles, S.Speedup,
               S.SearchMs);
  std::fprintf(F, "}\n");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path.c_str());
}

void runDiscoveryBench() {
  int N = bench::envInt("LOCUS_BENCH_SIZE", 40);
  int Budget = bench::envInt("LOCUS_BENCH_BUDGET", 24);
  const char *JsonEnv = std::getenv("LOCUS_BENCH_JSON");
  std::string JsonPath = JsonEnv ? JsonEnv : "BENCH_discovery.json";

  banner("Region discovery: PolyBench scan + one discovered-region search");
  std::printf("problem size %d, search budget %d\n\n", N, Budget);

  std::vector<KernelRow> Rows;
  std::printf("%-8s %8s %9s %8s %9s %12s %12s\n", "kernel", "scanned",
              "selected", "demoted", "rejected", "top hotness", "discover ms");
  for (const std::string &Name : workloads::polybenchKernels()) {
    auto P = bench::mustParse(workloads::polybenchSource(Name, N));
    auto Start = std::chrono::steady_clock::now();
    analysis::DiscoveryReport R = analysis::discoverRegions(*P);
    KernelRow Row;
    Row.Name = Name;
    Row.DiscoverMs = msSince(Start);
    Row.Scanned = R.NumScanned;
    Row.Selected = countVerdict(R, analysis::CandidateVerdict::Selected);
    Row.Demoted = countVerdict(R, analysis::CandidateVerdict::Demoted);
    Row.Rejected = countVerdict(R, analysis::CandidateVerdict::Rejected);
    if (!R.Candidates.empty())
      Row.TopHotness = R.Candidates.front().Hotness;
    Rows.push_back(Row);
    std::printf("%-8s %8d %9d %8d %9d %12.4g %12.3f\n", Name.c_str(),
                Row.Scanned, Row.Selected, Row.Demoted, Row.Rejected,
                Row.TopHotness, Row.DiscoverMs);
  }

  // Tune the hottest discovered region of syrk (the deepest nest of the
  // set) with the generic Fig. 13 program, as `--discover --tune` would.
  SearchRow S;
  S.Kernel = "syrk";
  S.Searcher = "bandit";
  auto Baseline = bench::mustParse(workloads::polybenchSource(S.Kernel, N));
  analysis::DiscoveryReport R = analysis::discoverRegions(*Baseline);
  auto Annotated = Baseline->clone();
  auto Injected = analysis::annotateRegions(*Annotated, R, /*TopN=*/1);
  if (!Injected.ok()) {
    std::fprintf(stderr, "fatal: annotation failed: %s\n",
                 Injected.message().c_str());
    std::exit(1);
  }
  const analysis::NestCandidate *Top = R.annotatable(1).front();
  S.Region = Top->Name;
  auto Prog = lang::parseLocusProgram(analysis::genericLocusProgram(*Top));
  if (!Prog.ok()) {
    std::fprintf(stderr, "fatal: generic program parse error: %s\n",
                 Prog.message().c_str());
    std::exit(1);
  }

  driver::OrchestratorOptions Opts;
  Opts.MaxEvaluations = Budget;
  Opts.SearcherName = S.Searcher;
  Opts.Seed = 99;
  driver::Orchestrator Orch(**Prog, *Annotated, Opts);
  auto Start = std::chrono::steady_clock::now();
  auto Res = Orch.runSearch();
  S.SearchMs = msSince(Start);
  if (!Res.ok()) {
    std::fprintf(stderr, "fatal: search failed: %s\n", Res.message().c_str());
    std::exit(1);
  }
  S.Points = static_cast<unsigned long long>(Res->Space.fullSize());
  S.Assessed = Res->Search.Evaluations;
  S.BaselineCycles = Res->BaselineCycles;
  S.BestCycles = Res->BestCycles;
  S.Speedup = Res->Speedup;
  std::printf("\nsearch: %s/%s (%s): %llu points, assessed %d, baseline "
              "%.0f -> best %.0f cycles, speedup %.2fx, %.1f ms\n",
              S.Kernel.c_str(), S.Region.c_str(), S.Searcher.c_str(), S.Points,
              S.Assessed, S.BaselineCycles, S.BestCycles, S.Speedup,
              S.SearchMs);

  writeJson(JsonPath, N, Budget, Rows, S);
}

/// Microbenchmark: cost of one discovery pass over a PolyBench kernel.
void BM_DiscoverRegions(benchmark::State &State) {
  const std::vector<std::string> &Kernels = workloads::polybenchKernels();
  const std::string &Name = Kernels[static_cast<size_t>(State.range(0)) %
                                    Kernels.size()];
  auto P = bench::mustParse(workloads::polybenchSource(Name, 40));
  for (auto _ : State) {
    analysis::DiscoveryReport R = analysis::discoverRegions(*P);
    benchmark::DoNotOptimize(R.Candidates.size());
  }
  State.SetLabel(Name);
}
BENCHMARK(BM_DiscoverRegions)->Arg(0)->Arg(3)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  runDiscoveryBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
