//===- service_bench.cpp - Tuning-service throughput snapshot ----------------===//
//
// Measures the tuning service's evaluation throughput against the in-process
// baseline on the Fig. 5 DGEMM search (tiny machine, simulated metric): one
// `--jobs 1` reference run, then coordinator + worker-fleet runs at 1, 2 and
// 4 workers, each verifying the determinism anchor (identical best cycles)
// along the way. The snapshot lands in BENCH_service.json.
//
// On this workload a simulated evaluation costs ~1 ms, so the numbers mostly
// price the service's *overhead* — queue round-trips, worker spawn and
// supervision. The service pays off when an evaluation costs seconds (native
// compile-and-run); the overhead being bounded and visible here is the point
// of checking the snapshot in.
//
// The binary re-execs itself as the worker fleet (argv: --service-worker
// <queue-dir>), the same pattern locus_cli --serve uses.
//
// Knobs: LOCUS_BENCH_BUDGET (assessments per run, default 24),
//        LOCUS_BENCH_JSON   (output path, default BENCH_service.json;
//                            empty string disables the JSON write).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/support/Subprocess.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

using namespace locus;
using bench::banner;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

std::string selfExe(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  return N > 0 ? std::string(Buf, static_cast<size_t>(N)) : std::string(Argv0);
}

driver::OrchestratorOptions baseOptions(int Budget) {
  driver::OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.SearcherName = "de";
  Opts.MaxEvaluations = Budget;
  Opts.Seed = 5;
  return Opts;
}

struct Workload {
  std::unique_ptr<lang::LocusProgram> LP;
  std::unique_ptr<cir::Program> CP;
};

Workload mustLoadDgemm() {
  Workload W;
  auto LP = lang::parseLocusProgram(workloads::dgemmLocusFig5());
  if (!LP.ok()) {
    std::fprintf(stderr, "fatal: locus parse error: %s\n",
                 LP.message().c_str());
    std::exit(1);
  }
  W.LP = std::move(*LP);
  W.CP = bench::mustParse(workloads::dgemmSource(24, 24, 24));
  return W;
}

/// Worker-fleet mode: the coordinator spawned us with
/// `--service-worker <queue-dir>`.
int runWorkerMode(const char *Argv0, const std::string &QueueDir) {
  Workload W = mustLoadDgemm();
  driver::Orchestrator Orch(*W.LP, *W.CP, baseOptions(/*Budget=*/24));
  service::WorkerOptions WOpts;
  WOpts.QueueDir = QueueDir;
  WOpts.WorkerId = "bench-pid" + std::to_string(::getpid());
  auto R = Orch.runWorker(WOpts);
  if (!R.ok()) {
    std::fprintf(stderr, "worker failed: %s\n", R.message().c_str());
    return 1;
  }
  (void)Argv0;
  return 0;
}

struct RunRow {
  int Workers = 0; ///< 0 = the in-process --jobs 1 reference
  double Ms = 0;
  double EvalsPerSec = 0;
  double BestCycles = 0;
  uint64_t WorkerResults = 0;
  uint64_t LocalFallback = 0;
  int Spawned = 0;
  bool MatchesLocal = true;
};

RunRow runOnce(const Workload &W, int Budget, int Workers,
               const std::string &Exe, const std::string &QueueDir) {
  driver::OrchestratorOptions Opts = baseOptions(Budget);
  if (Workers > 0) {
    Opts.Serve.QueueDir = QueueDir;
    Opts.Serve.Workers = Workers;
    Opts.Serve.WorkerArgv = [Exe, QueueDir](int, int) {
      return std::vector<std::string>{Exe, "--service-worker", QueueDir};
    };
  }
  driver::Orchestrator Orch(*W.LP, *W.CP, Opts);
  auto Start = std::chrono::steady_clock::now();
  auto R = Orch.runSearch();
  double Ms = msSince(Start);
  if (!R.ok()) {
    std::fprintf(stderr, "fatal: search failed: %s\n", R.message().c_str());
    std::exit(1);
  }
  RunRow Row;
  Row.Workers = Workers;
  Row.Ms = Ms;
  Row.EvalsPerSec = R->Search.Evaluations / (Ms / 1000.0);
  Row.BestCycles = R->BestCycles;
  Row.WorkerResults = R->Service.WorkerResults;
  Row.LocalFallback = R->Service.LocalFallbackEvals;
  Row.Spawned = R->Service.WorkersSpawned;
  return Row;
}

void writeJson(const std::string &Path, int Budget,
               const std::vector<RunRow> &Rows) {
  if (Path.empty())
    return;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"service\",\n");
  std::fprintf(F, "  \"workload\": \"dgemm 24x24x24, de, tiny machine\",\n");
  std::fprintf(F, "  \"search_budget\": %d,\n  \"runs\": [\n", Budget);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const RunRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"mode\": \"%s\", \"workers\": %d, \"wall_ms\": %.1f, "
                 "\"evals_per_sec\": %.1f, \"worker_results\": %llu, "
                 "\"local_fallback\": %llu, \"spawned\": %d, "
                 "\"best_cycles\": %.0f, \"matches_local\": %s}%s\n",
                 R.Workers == 0 ? "local" : "serve", R.Workers, R.Ms,
                 R.EvalsPerSec, (unsigned long long)R.WorkerResults,
                 (unsigned long long)R.LocalFallback, R.Spawned, R.BestCycles,
                 R.MatchesLocal ? "true" : "false",
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path.c_str());
}

void runServiceBench(const char *Argv0) {
  int Budget = bench::envInt("LOCUS_BENCH_BUDGET", 24);
  const char *JsonEnv = std::getenv("LOCUS_BENCH_JSON");
  std::string JsonPath = JsonEnv ? JsonEnv : "BENCH_service.json";
  std::string Exe = selfExe(Argv0);

  banner("Tuning service: eval throughput vs the in-process baseline");
  std::printf("budget %d, searcher de, seed 5\n\n", Budget);
  std::printf("%-7s %8s %10s %13s %14s %8s %8s\n", "mode", "workers",
              "wall ms", "evals/sec", "worker results", "spawned", "match");

  Workload W = mustLoadDgemm();
  std::vector<RunRow> Rows;
  RunRow Local = runOnce(W, Budget, 0, Exe, "");
  Rows.push_back(Local);
  std::printf("%-7s %8d %10.1f %13.1f %14llu %8d %8s\n", "local", 0, Local.Ms,
              Local.EvalsPerSec, 0ull, 0, "-");

  support::TempDir Dir("locus-svc-bench-");
  for (int Workers : {1, 2, 4}) {
    RunRow Row = runOnce(W, Budget, Workers, Exe,
                         Dir.path() + "/q" + std::to_string(Workers));
    Row.MatchesLocal = Row.BestCycles == Local.BestCycles;
    Rows.push_back(Row);
    std::printf("%-7s %8d %10.1f %13.1f %14llu %8d %8s\n", "serve", Workers,
                Row.Ms, Row.EvalsPerSec,
                (unsigned long long)Row.WorkerResults, Row.Spawned,
                Row.MatchesLocal ? "yes" : "NO");
    if (!Row.MatchesLocal)
      std::fprintf(stderr,
                   "fatal: serve run (%d workers) diverged from the local "
                   "trajectory: best %.0f != %.0f\n",
                   Workers, Row.BestCycles, Local.BestCycles);
  }
  writeJson(JsonPath, Budget, Rows);
}

/// Microbenchmark: one full queue round-trip (announce -> claim -> result ->
/// fold), the per-evaluation overhead floor the service adds on top of the
/// objective itself.
void BM_QueueRoundTrip(benchmark::State &State) {
  support::TempDir Dir("locus-svc-bench-");
  service::TaskQueueOptions Opts;
  Opts.Dir = Dir.path();
  Opts.Header = service::makeQueueHeader(1, 2);
  auto Q = service::TaskQueue::open(Opts);
  if (!Q.ok()) {
    State.SkipWithError(Q.message().c_str());
    return;
  }
  service::QueueState S;
  uint64_t Id = 0;
  for (auto _ : State) {
    ++Id;
    (void)Q->announceTask(Id, "a = i:8\n", 0);
    (void)Q->claim(Id, 0, "bench");
    (void)Q->postResult(Id, 0, "bench", search::EvalOutcome::success(1.0));
    (void)Q->poll(S);
    benchmark::DoNotOptimize(S.AppliedRecords);
  }
}
// Fixed iteration count: poll() re-reads the log from the start, so free
// iteration scaling would turn the benchmark quadratic in its own history.
BENCHMARK(BM_QueueRoundTrip)->Iterations(256);

} // namespace

int main(int argc, char **argv) {
  if (argc >= 3 && std::string(argv[1]) == "--service-worker")
    return runWorkerMode(argv[0], argv[2]);
  runServiceBench(argv[0]);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
