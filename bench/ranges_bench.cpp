//===- ranges_bench.cpp - Range-analysis perf snapshot -----------------------===//
//
// Times the symbolic range analysis over the kernel corpus (bounds proofs
// per PolyBench kernel) and measures what range-driven pruning buys a
// dependent-range search: the same dgemm tile search run with the legality
// oracle on and off, comparing objective invocations and wall time under an
// identical trajectory. Produces the per-PR perf snapshot BENCH_ranges.json.
//
// Knobs: LOCUS_BENCH_SIZE   (problem size N, default 40),
//        LOCUS_BENCH_BUDGET (search assessments, default 48),
//        LOCUS_BENCH_JSON   (output path, default BENCH_ranges.json;
//                            empty string disables the JSON write).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/analysis/RangeAnalysis.h"
#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

using namespace locus;
using bench::banner;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

struct KernelRow {
  std::string Name;
  int Checked = 0;
  int Proven = 0;
  int Violations = 0;
  int Unproven = 0;
  double CheckMs = 0;
};

struct PruneRow {
  std::string Searcher;
  int Evaluations = 0;
  int PrunedByRange = 0;
  int ObjectiveCallsOn = 0;  ///< evaluations that reached the objective
  int ObjectiveCallsOff = 0;
  double SearchMsOn = 0;
  double SearchMsOff = 0;
};

void writeJson(const std::string &Path, int N, int Budget,
               const std::vector<KernelRow> &Rows,
               const std::vector<PruneRow> &Prunes) {
  if (Path.empty())
    return;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"ranges\",\n");
  std::fprintf(F, "  \"problem_size\": %d,\n  \"search_budget\": %d,\n", N,
               Budget);
  std::fprintf(F, "  \"bounds_proofs\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const KernelRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"kernel\": \"%s\", \"subscripts\": %d, "
                 "\"proven\": %d, \"violations\": %d, \"unproven\": %d, "
                 "\"check_ms\": %.3f}%s\n",
                 R.Name.c_str(), R.Checked, R.Proven, R.Violations, R.Unproven,
                 R.CheckMs, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"range_prune\": [\n");
  for (size_t I = 0; I < Prunes.size(); ++I) {
    const PruneRow &P = Prunes[I];
    std::fprintf(F,
                 "    {\"searcher\": \"%s\", \"evaluations\": %d, "
                 "\"pruned_by_range\": %d, \"objective_calls_on\": %d, "
                 "\"objective_calls_off\": %d, \"search_ms_on\": %.3f, "
                 "\"search_ms_off\": %.3f}%s\n",
                 P.Searcher.c_str(), P.Evaluations, P.PrunedByRange,
                 P.ObjectiveCallsOn, P.ObjectiveCallsOff, P.SearchMsOn,
                 P.SearchMsOff, I + 1 < Prunes.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path.c_str());
}

const char *DependentRangeProgram = R"(
Search {
  buildcmd = "make";
  runcmd = "./matmul";
}

CodeReg matmul {
  tile = poweroftwo(2..32);
  tf = poweroftwo(2..tile);
  RoseLocus.Tiling(loop="0", factor=tile);
}
)";

driver::SearchWorkflowResult runTileSearch(const std::string &Searcher,
                                           bool Prune, int Budget,
                                           double &OutMs) {
  auto LP = lang::parseLocusProgram(DependentRangeProgram);
  auto CP = cir::parseProgram(workloads::dgemmSource(32, 32, 32));
  if (!LP.ok() || !CP.ok()) {
    std::fprintf(stderr, "fatal: bench inputs failed to parse\n");
    std::exit(1);
  }
  driver::OrchestratorOptions Opts;
  Opts.Eval.Machine = machine::MachineConfig::tiny();
  Opts.MaxEvaluations = Budget;
  Opts.Seed = 11;
  Opts.SearcherName = Searcher;
  Opts.StaticPrune = Prune;
  driver::Orchestrator Orch(**LP, **CP, Opts);
  auto Start = std::chrono::steady_clock::now();
  auto R = Orch.runSearch();
  OutMs = msSince(Start);
  if (!R.ok()) {
    std::fprintf(stderr, "fatal: search failed: %s\n", R.message().c_str());
    std::exit(1);
  }
  return std::move(*R);
}

void runRangesBench() {
  int N = bench::envInt("LOCUS_BENCH_SIZE", 40);
  int Budget = bench::envInt("LOCUS_BENCH_BUDGET", 48);
  const char *JsonEnv = std::getenv("LOCUS_BENCH_JSON");
  std::string JsonPath = JsonEnv ? JsonEnv : "BENCH_ranges.json";

  banner("Range analysis: corpus bounds proofs + range-driven pruning");
  std::printf("problem size %d, search budget %d\n\n", N, Budget);

  std::vector<KernelRow> Rows;
  std::printf("%-8s %10s %8s %10s %9s %9s\n", "kernel", "subscripts", "proven",
              "violations", "unproven", "check ms");
  for (const std::string &Name : workloads::polybenchKernels()) {
    auto P = bench::mustParse(workloads::polybenchSource(Name, N));
    auto Start = std::chrono::steady_clock::now();
    analysis::BoundsReport R = analysis::checkBounds(*P);
    KernelRow Row;
    Row.Name = Name;
    Row.CheckMs = msSince(Start);
    Row.Checked = R.SubscriptsChecked;
    Row.Proven = R.Proven;
    Row.Violations = R.violations();
    Row.Unproven = R.unproven();
    Rows.push_back(Row);
    std::printf("%-8s %10d %8d %10d %9d %9.3f\n", Name.c_str(), Row.Checked,
                Row.Proven, Row.Violations, Row.Unproven, Row.CheckMs);
  }

  // Range-driven pruning on the dependent-range dgemm tile space: identical
  // trajectory by construction, fewer objective invocations, less time.
  std::vector<PruneRow> Prunes;
  std::printf("\n%-10s %6s %9s %8s %9s %8s %9s\n", "searcher", "evals",
              "by-range", "obj(on)", "obj(off)", "ms(on)", "ms(off)");
  for (const char *Searcher : {"exhaustive", "random", "bandit", "tpe"}) {
    PruneRow Row;
    Row.Searcher = Searcher;
    driver::SearchWorkflowResult On =
        runTileSearch(Searcher, /*Prune=*/true, Budget, Row.SearchMsOn);
    driver::SearchWorkflowResult Off =
        runTileSearch(Searcher, /*Prune=*/false, Budget, Row.SearchMsOff);
    Row.Evaluations = On.Search.Evaluations;
    Row.PrunedByRange = On.Search.PrunedStaticByRange;
    Row.ObjectiveCallsOn = On.Search.Evaluations - On.Search.PrunedStatic;
    Row.ObjectiveCallsOff = Off.Search.Evaluations - Off.Search.PrunedStatic;
    Prunes.push_back(Row);
    std::printf("%-10s %6d %9d %8d %9d %8.1f %9.1f\n", Searcher,
                Row.Evaluations, Row.PrunedByRange, Row.ObjectiveCallsOn,
                Row.ObjectiveCallsOff, Row.SearchMsOn, Row.SearchMsOff);
  }

  writeJson(JsonPath, N, Budget, Rows, Prunes);
}

/// Microbenchmark: cost of one whole-program bounds scan.
void BM_CheckBounds(benchmark::State &State) {
  const std::vector<std::string> &Kernels = workloads::polybenchKernels();
  const std::string &Name = Kernels[static_cast<size_t>(State.range(0)) %
                                    Kernels.size()];
  auto P = bench::mustParse(workloads::polybenchSource(Name, 40));
  for (auto _ : State) {
    analysis::BoundsReport R = analysis::checkBounds(*P);
    benchmark::DoNotOptimize(R.Proven);
  }
  State.SetLabel(Name);
}
BENCHMARK(BM_CheckBounds)->Arg(0)->Arg(6)->Arg(7);

} // namespace

int main(int argc, char **argv) {
  runRangesBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
