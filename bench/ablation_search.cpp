//===- ablation_search.cpp - Search-module comparison ablation ----------------===//
//
// The paper notes (Section V) that OpenTuner tended to find the best variant
// faster than HyperOpt thanks to its meta-technique and variant
// deduplication. This ablation compares all built-in search modules on the
// Fig. 7 DGEMM space under increasing assessment budgets: best cycles found
// per (searcher, budget), plus duplicate-proposal counts.
//
// Knobs: LOCUS_BENCH_SIZE (matrix order, default 48).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace locus;

namespace {

void runAblation() {
  int N = bench::envInt("LOCUS_BENCH_SIZE", 48);
  bench::banner("Ablation: search modules on the Fig. 7 DGEMM space");
  std::printf("matrix order %d; entries are best cycles found "
              "(lower is better), then duplicates skipped\n\n",
              N);

  std::string Source = workloads::dgemmSource(N, N, N);
  auto Baseline = bench::mustParse(Source);
  auto Prog = lang::parseLocusProgram(workloads::dgemmLocusFig7(64));
  if (!Prog.ok())
    std::exit(1);

  machine::MachineConfig M = machine::MachineConfig::tiny();
  double Base = bench::mustRun(*Baseline, M).Cycles;
  std::printf("baseline: %.0f cycles\n\n", Base);

  const std::vector<int> Budgets = {8, 16, 32};
  std::printf("%-12s", "searcher");
  for (int B : Budgets)
    std::printf(" %10s@%-3d", "best", B);
  std::printf(" %12s\n", "dups@32");

  for (const char *Name :
       {"random", "hillclimb", "de", "bandit", "tpe"}) {
    std::printf("%-12s", Name);
    int Dups = 0;
    for (int B : Budgets) {
      driver::OrchestratorOptions Opts;
      Opts.SearcherName = Name;
      Opts.MaxEvaluations = B;
      Opts.Seed = 11;
      Opts.Eval.Machine = M;
      driver::Orchestrator Orch(**Prog, *Baseline, Opts);
      auto R = Orch.runSearch();
      if (R.ok()) {
        std::printf(" %14.0f", R->BestCycles);
        Dups = R->Search.DuplicatesSkipped;
      } else {
        std::printf(" %14s", "err");
      }
    }
    std::printf(" %12d\n", Dups);
  }
  std::printf("\nExpected shape: bandit (the OpenTuner stand-in) converges at "
              "least as fast as tpe (HyperOpt) and random, echoing the "
              "paper's observation.\n");
}

void BM_BanditStep(benchmark::State &State) {
  // Pure search-machinery throughput on a synthetic objective.
  search::Space S;
  for (int I = 0; I < 6; ++I) {
    search::ParamDef P;
    P.Id = "p" + std::to_string(I);
    P.Label = P.Id;
    P.Kind = search::ParamKind::Pow2;
    P.Min = 2;
    P.Max = 512;
    S.Params.push_back(P);
  }
  for (auto _ : State) {
    search::LambdaObjective Obj([](const search::Point &P, bool &Valid) {
      Valid = true;
      double Sum = 0;
      for (const auto &[Id, V] : P.Values)
        Sum += static_cast<double>(std::get<int64_t>(V));
      return Sum;
    });
    search::SearchOptions Opts;
    Opts.MaxEvaluations = 50;
    auto R = search::makeBanditSearcher()->search(S, Obj, Opts);
    benchmark::DoNotOptimize(R.BestMetric);
  }
}
BENCHMARK(BM_BanditStep);

} // namespace

int main(int argc, char **argv) {
  runAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
