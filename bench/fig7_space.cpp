//===- fig7_space.cpp - The Fig. 7 optimization space --------------------------===//
//
// Verifies the space-size claim of Section V-A: the Fig. 7 program defines
// an optimization space of 34,012,224 variants (as counted by OpenTuner).
// Prints the extracted parameters, the value-parameter product (the paper's
// convention) and the full cross product including the OR-block selector,
// and microbenchmarks space extraction and variant materialization — the
// operations that run once per search and once per assessment respectively.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/driver/Orchestrator.h"
#include "src/locus/Interpreter.h"
#include "src/locus/LocusParser.h"
#include "src/search/Search.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace locus;

namespace {

void runFig7Space() {
  bench::banner("Figure 7: optimization-space size (Section V-A)");
  auto Prog = lang::parseLocusProgram(workloads::dgemmLocusFig7(512));
  auto Baseline = bench::mustParse(workloads::dgemmSource(64, 64, 64));
  if (!Prog.ok())
    std::exit(1);

  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  lang::LocusInterpreter Interp(**Prog, Registry);
  search::Space Space;
  transform::TransformContext TCtx;
  TCtx.Prog = Baseline.get();
  lang::ExecOutcome O = Interp.extractSpace(*Baseline, Space, TCtx);
  if (!O.Ok) {
    std::fprintf(stderr, "extraction failed: %s\n", O.Error.c_str());
    std::exit(1);
  }

  std::printf("%s\n", Space.describe().c_str());
  unsigned long long ValueSize = Space.valueSize();
  std::printf("value-parameter product : %llu\n", ValueSize);
  std::printf("paper reports           : 34012224 -> %s\n",
              ValueSize == 34012224ull ? "MATCH" : "MISMATCH");
  std::printf("full product (with the OR-block selector): %llu\n",
              (unsigned long long)Space.fullSize());

  auto Settings = Interp.searchSettings();
  if (Settings.ok())
    std::printf("\nSearch block: buildcmd=\"%s\" runcmd=\"%s\"\n",
                Settings->getString("buildcmd").c_str(),
                Settings->getString("runcmd").c_str());
}

void BM_ExtractFig7Space(benchmark::State &State) {
  auto Prog = lang::parseLocusProgram(workloads::dgemmLocusFig7(512));
  auto Baseline = bench::mustParse(workloads::dgemmSource(32, 32, 32));
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  for (auto _ : State) {
    lang::LocusInterpreter Interp(**Prog, Registry);
    search::Space Space;
    transform::TransformContext TCtx;
    TCtx.Prog = Baseline.get();
    Interp.extractSpace(*Baseline, Space, TCtx);
    benchmark::DoNotOptimize(Space.Params.size());
  }
}
BENCHMARK(BM_ExtractFig7Space);

void BM_MaterializeVariant(benchmark::State &State) {
  auto Prog = lang::parseLocusProgram(workloads::dgemmLocusFig7(512));
  auto Baseline = bench::mustParse(workloads::dgemmSource(32, 32, 32));
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  lang::LocusInterpreter Interp(**Prog, Registry);
  search::Space Space;
  {
    transform::TransformContext TCtx;
    TCtx.Prog = Baseline.get();
    Interp.extractSpace(*Baseline, Space, TCtx);
  }
  Rng R(7);
  for (auto _ : State) {
    search::Point P = search::samplePoint(Space, R);
    auto Variant = Baseline->clone();
    transform::TransformContext TCtx;
    TCtx.Prog = Variant.get();
    lang::ExecOutcome O = Interp.applyPoint(*Variant, P, TCtx);
    benchmark::DoNotOptimize(O.InvalidPoint);
  }
}
BENCHMARK(BM_MaterializeVariant);

} // namespace

int main(int argc, char **argv) {
  runFig7Space();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
