//===- table1_loopnests.cpp - Table I: arbitrary loop nests --------------------===//
//
// Regenerates Table I and the Section V-D summary statistics: the Fig. 13
// generic Locus program runs over a corpus of loop nests (a deterministic
// synthetic stand-in for the paper's 856 nests extracted from 16 benchmark
// suites), searching interchange / tiling / unroll-and-jam / distribution /
// unrolling where the dependence and shape queries allow them. Pluto's
// fixed heuristic runs on the same nests.
//
// Reported, with the paper's values for reference:
//   per-suite nest counts and variants assessed        (Table I)
//   average best speedup: Locus 1.15 vs Pluto 1.05     (Section V-D)
//   nests transformed:    Locus 822 vs Pluto 397
//   speedup > 1.05:       Locus 360 vs Pluto 170
//   head-to-head wins among both-optimized nests: Locus 129/170
//
// Knobs: LOCUS_BENCH_SCALE (corpus scale, 1.0 = 856 nests, default 0.05),
//        LOCUS_BENCH_BUDGET (assessments per nest, paper 500, default 30).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/baseline/Pluto.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

using namespace locus;

namespace {

struct SuiteStats {
  int Nests = 0;
  long long Variants = 0;
};

void runTable1() {
  double Scale = bench::envDouble("LOCUS_BENCH_SCALE", 0.05);
  int Budget = bench::envInt("LOCUS_BENCH_BUDGET", 30);
  bench::banner("Table I + Section V-D: arbitrary loop nests");
  std::printf("corpus scale %.3f (paper: 856 nests), %d assessments per nest "
              "(paper: 500)\n\n",
              Scale, Budget);

  std::vector<workloads::CorpusEntry> Corpus = workloads::loopCorpus(Scale, 3);
  auto Prog = lang::parseLocusProgram(workloads::fig13GenericProgram());
  if (!Prog.ok())
    std::exit(1);

  machine::MachineConfig M = machine::MachineConfig::tiny();
  std::map<std::string, SuiteStats> Suites;
  long long TotalVariants = 0;
  int LocusTransformed = 0, PlutoTransformed = 0;
  int LocusAbove105 = 0, PlutoAbove105 = 0;
  int BothOptimized = 0, LocusWins = 0;
  double LocusSpeedupSum = 0, PlutoSpeedupSum = 0;
  int Measured = 0;

  for (const workloads::CorpusEntry &E : Corpus) {
    auto Baseline = cir::parseProgram(E.Source);
    if (!Baseline.ok())
      continue;
    double Base = bench::mustRun(**Baseline, M).Cycles;

    // Locus search.
    driver::OrchestratorOptions Opts;
    Opts.SearcherName = "bandit";
    Opts.MaxEvaluations = Budget;
    Opts.Eval.Machine = M;
    driver::Orchestrator Orch(**Prog, **Baseline, Opts);
    auto R = Orch.runSearch();
    if (!R.ok())
      continue;
    // "Transformed" in the paper's sense: Locus generated at least one
    // valid (legally transformed) variant for this nest.
    bool LocusDid = (R->Search.Evaluations - R->Search.InvalidPoints) > 0 &&
                    !R->Space.Params.empty();
    double LocusSpeedup = R->Speedup;

    // Pluto with the paper's Section V-D flags: -tile, -prevector, -unroll
    // (no -parallel; both tools' variants ran sequentially under GCC -O3).
    baseline::PlutoOptions POpts;
    POpts.TrySkewedTiling = false;
    POpts.Parallel = false;
    baseline::PlutoOutcome Pluto =
        baseline::runPluto(**Baseline, "scop", POpts);
    double PlutoCycles = bench::mustRun(*Pluto.Program, M).Cycles;
    double PlutoSpeedup = Base / PlutoCycles;

    SuiteStats &S = Suites[E.Suite];
    ++S.Nests;
    S.Variants += R->Search.Evaluations;
    TotalVariants += R->Search.Evaluations;
    ++Measured;
    LocusSpeedupSum += LocusSpeedup;
    PlutoSpeedupSum += PlutoSpeedup;
    if (LocusDid)
      ++LocusTransformed;
    if (Pluto.Transformed)
      ++PlutoTransformed;
    if (LocusSpeedup > 1.05)
      ++LocusAbove105;
    if (Pluto.Transformed && PlutoSpeedup > 1.05)
      ++PlutoAbove105;
    if (Pluto.Transformed && PlutoSpeedup > 1.05 && LocusSpeedup > 1.05) {
      ++BothOptimized;
      if (LocusSpeedup > PlutoSpeedup)
        ++LocusWins;
    }
  }

  std::printf("%-20s %10s %14s\n", "Benchmark", "loop nests",
              "variants assessed");
  for (const auto &[Suite, Count] : workloads::corpusSuites()) {
    auto It = Suites.find(Suite);
    if (It == Suites.end())
      continue;
    std::printf("%-20s %10d %14lld   (paper: %d nests)\n", Suite.c_str(),
                It->second.Nests, It->second.Variants, Count);
  }
  std::printf("%-20s %10d %14lld   (paper: 856 / 45899)\n\n", "Total",
              Measured, TotalVariants);

  if (Measured) {
    std::printf("average best speedup:  Locus %.3f  Pluto %.3f  "
                "(paper: 1.15 / 1.05)\n",
                LocusSpeedupSum / Measured, PlutoSpeedupSum / Measured);
    std::printf("nests transformed:     Locus %d/%d (%.0f%%)  Pluto %d/%d "
                "(%.0f%%)  (paper: 822/856 = 96%%, 397/856 = 46%%)\n",
                LocusTransformed, Measured,
                100.0 * LocusTransformed / Measured, PlutoTransformed,
                Measured, 100.0 * PlutoTransformed / Measured);
    std::printf("speedup > 1.05:        Locus %d  Pluto %d  (paper: 360 / "
                "170)\n",
                LocusAbove105, PlutoAbove105);
    if (BothOptimized)
      std::printf("head-to-head (both > 1.05): Locus faster on %d of %d "
                  "(paper: 129 of 170)\n",
                  LocusWins, BothOptimized);
  }
}

void BM_Fig13SearchOneNest(benchmark::State &State) {
  std::vector<workloads::CorpusEntry> Corpus = workloads::loopCorpus(0.01, 3);
  auto Prog = lang::parseLocusProgram(workloads::fig13GenericProgram());
  auto Baseline = cir::parseProgram(Corpus[0].Source);
  for (auto _ : State) {
    driver::OrchestratorOptions Opts;
    Opts.SearcherName = "random";
    Opts.MaxEvaluations = 10;
    Opts.Eval.Machine = machine::MachineConfig::tiny();
    driver::Orchestrator Orch(**Prog, **Baseline, Opts);
    auto R = Orch.runSearch();
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_Fig13SearchOneNest);

} // namespace

int main(int argc, char **argv) {
  runTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
