//===- fig6_stencils.cpp - Figure 6 (left): stencil speedups -----------------===//
//
// Regenerates the left half of Fig. 6: Locus vs Pluto speedup over the
// baseline on the six stencils (Jacobi/Heat/Seidel x 1D/2D). Both apply
// the same Skewing-1 time tiling (Pips.GenericTiling) plus vectorization
// pragmas; Locus empirically searches the skew block size (Fig. 9 program),
// Pluto uses its fixed default — the paper's point is that the search,
// not the transformation set, makes the difference.
//
// Knobs: LOCUS_BENCH_SIZE (2D grid edge, default 64; 1D uses size^2),
//        LOCUS_BENCH_BUDGET (assessments, default 8 = exhaustive pow2 span).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "src/baseline/Pluto.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace locus;

namespace {

void runFig6Stencils() {
  int N2d = bench::envInt("LOCUS_BENCH_SIZE", 128);
  int N1d = N2d * N2d;
  int T = 16;
  int Budget = bench::envInt("LOCUS_BENCH_BUDGET", 8);
  // The paper's 2000^2 grids overflow the Xeon's 25 MB L3; the reduced grids
  // here are paired with proportionally scaled caches so time tiling faces
  // the same pressure regime.
  machine::MachineConfig M = machine::MachineConfig::xeonE5v3Scaled(128);
  bench::banner("Figure 6 (left): stencil speedups (Locus vs Pluto)");
  std::printf("2D: %dx%d, 1D: %d elements, %d time steps, caches scaled 1/128 "
              "(paper: 2000x2000 / 1.6M, 1000 steps, full Xeon)\n\n",
              N2d, N2d, N1d, T);

  auto Prog = lang::parseLocusProgram(workloads::stencilLocusFig9(4, 64));
  if (!Prog.ok())
    std::exit(1);

  std::printf("%-12s %14s %14s %14s\n", "stencil", "Locus", "Pluto",
              "best skew");
  double GeoLocus = 0, GeoPluto = 0;
  int Count = 0;
  for (workloads::StencilKind K :
       {workloads::StencilKind::Jacobi1D, workloads::StencilKind::Jacobi2D,
        workloads::StencilKind::Heat1D, workloads::StencilKind::Heat2D,
        workloads::StencilKind::Seidel1D, workloads::StencilKind::Seidel2D}) {
    bool Is1D = K == workloads::StencilKind::Jacobi1D ||
                K == workloads::StencilKind::Heat1D ||
                K == workloads::StencilKind::Seidel1D;
    std::string Source = workloads::stencilSource(K, T, Is1D ? N1d : N2d);
    auto Baseline = bench::mustParse(Source);
    double Base = bench::mustRun(*Baseline, M).Cycles;

    // Locus: exhaustive over the pow2 skew sizes (the Fig. 9 space).
    driver::OrchestratorOptions Opts;
    Opts.SearcherName = "exhaustive";
    Opts.MaxEvaluations = Budget;
    Opts.Eval.Machine = M;
    driver::Orchestrator Orch(**Prog, *Baseline, Opts);
    auto R = Orch.runSearch();
    double LocusCycles = R.ok() ? R->BestCycles : Base;
    long long BestSkew = 0;
    if (R.ok() && !R->BaselineChosen && !R->Search.Best.Values.empty())
      BestSkew = std::get<int64_t>(R->Search.Best.Values.begin()->second);

    // Pluto: fixed heuristic with semantic validation (the modulo time
    // buffers put these outside our affine analyzer, as they do for pet).
    eval::EvalOptions Check;
    Check.CountCost = false;
    eval::RunResult BaseRun = eval::evaluateProgram(*Baseline, Check);
    baseline::PlutoOutcome Pluto = baseline::runPluto(
        *Baseline, "stencil", baseline::PlutoOptions{},
        [&](const cir::Program &Cand) {
          eval::RunResult V = eval::evaluateProgram(Cand, Check);
          return V.Ok && std::abs(V.Checksum - BaseRun.Checksum) <
                             1e-6 * std::max(1.0, std::abs(BaseRun.Checksum));
        });
    double PlutoCycles = bench::mustRun(*Pluto.Program, M).Cycles;

    double SLocus = Base / LocusCycles;
    double SPluto = Base / PlutoCycles;
    GeoLocus += std::log(SLocus);
    GeoPluto += std::log(SPluto);
    ++Count;
    std::printf("%-12s %13.2fx %13.2fx %14lld\n", workloads::stencilName(K),
                SLocus, SPluto, BestSkew);
  }
  std::printf("\ngeomean: Locus %.2fx, Pluto %.2fx (paper: Locus up to ~4x, "
              "always >= Pluto)\n",
              std::exp(GeoLocus / Count), std::exp(GeoPluto / Count));
}

void BM_EvaluateHeat2d(benchmark::State &State) {
  auto P = bench::mustParse(workloads::stencilSource(
      workloads::StencilKind::Heat2D, 8, static_cast<int>(State.range(0))));
  eval::ProgramEvaluator Eval(*P, eval::EvalOptions());
  if (!Eval.prepare().ok())
    State.SkipWithError("prepare failed");
  for (auto _ : State)
    benchmark::DoNotOptimize(Eval.run().Cycles);
}
BENCHMARK(BM_EvaluateHeat2d)->Arg(32)->Arg(64);

} // namespace

int main(int argc, char **argv) {
  runFig6Stencils();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
