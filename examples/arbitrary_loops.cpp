//===- arbitrary_loops.cpp - The Fig. 13 generic program on unknown nests -----===//
//
// Section V-D: one 37-line Locus program optimizes arbitrary loop nests whose
// structure is not known in advance. Queries (IsDepAvailable,
// IsPerfectLoopNest, LoopNestDepth) segment the space; interchange, tiling,
// unroll-and-jam, optional distribution and unrolling are searched only where
// legal. This example runs it over a small slice of the synthetic corpus and
// prints one row per nest.
//
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace locus;

int main(int argc, char **argv) {
  double Scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  std::vector<workloads::CorpusEntry> Corpus = workloads::loopCorpus(Scale, 3);
  auto Prog = lang::parseLocusProgram(workloads::fig13GenericProgram());
  if (!Prog.ok()) {
    std::fprintf(stderr, "locus parse error: %s\n", Prog.message().c_str());
    return 1;
  }

  std::printf("%-22s %8s %10s %10s %9s\n", "nest", "space", "assessed",
              "speedup", "variant");
  int Transformed = 0;
  for (const workloads::CorpusEntry &E : Corpus) {
    auto Baseline = cir::parseProgram(E.Source);
    if (!Baseline.ok()) {
      std::printf("%-22s parse error\n", E.Name.c_str());
      continue;
    }
    driver::OrchestratorOptions Opts;
    Opts.SearcherName = "bandit";
    Opts.MaxEvaluations = 25;
    Opts.Eval.Machine = machine::MachineConfig::tiny();
    driver::Orchestrator Orch(**Prog, **Baseline, Opts);
    auto R = Orch.runSearch();
    if (!R.ok()) {
      std::printf("%-22s error: %s\n", E.Name.c_str(), R.message().c_str());
      continue;
    }
    if (!R->BaselineChosen)
      ++Transformed;
    std::printf("%-22s %8llu %10d %9.2fx %9s\n", E.Name.c_str(),
                (unsigned long long)R->Space.fullSize(),
                R->Search.Evaluations, R->Speedup,
                R->BaselineChosen ? "baseline" : "tuned");
  }
  std::printf("\n%d / %zu nests improved over their baselines\n", Transformed,
              Corpus.size());
  return 0;
}
