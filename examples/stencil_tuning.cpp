//===- stencil_tuning.cpp - Skewed time-tiling search on stencils -------------===//
//
// Reproduces the Section V-B workflow on one stencil: the Fig. 9 program
// applies Pips.GenericTiling with a Skewing-1 matrix whose tile size is a
// poweroftwo search variable, plus vectorization pragmas; the search picks
// the best skew block for the simulated cache hierarchy, and the result is
// compared against the Pluto-style fixed heuristic.
//
//===----------------------------------------------------------------------===//

#include "src/baseline/Pluto.h"
#include "src/cir/Parser.h"
#include "src/cir/Printer.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <cmath>
#include <cstdio>

using namespace locus;

int main(int argc, char **argv) {
  workloads::StencilKind Kind = workloads::StencilKind::Heat2D;
  if (argc > 1) {
    std::string Name = argv[1];
    for (workloads::StencilKind K :
         {workloads::StencilKind::Jacobi1D, workloads::StencilKind::Jacobi2D,
          workloads::StencilKind::Heat1D, workloads::StencilKind::Heat2D,
          workloads::StencilKind::Seidel1D, workloads::StencilKind::Seidel2D})
      if (Name == workloads::stencilName(K))
        Kind = K;
  }

  bool Is1D = Kind == workloads::StencilKind::Jacobi1D ||
              Kind == workloads::StencilKind::Heat1D ||
              Kind == workloads::StencilKind::Seidel1D;
  int T = 24, N = Is1D ? 4096 : 64;
  std::string Source = workloads::stencilSource(Kind, T, N);
  std::printf("stencil: %s (T=%d, N=%d)\n", workloads::stencilName(Kind), T, N);

  auto Baseline = cir::parseProgram(Source);
  auto Prog = lang::parseLocusProgram(workloads::stencilLocusFig9(4, 64));
  if (!Baseline.ok() || !Prog.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  driver::OrchestratorOptions Opts;
  Opts.SearcherName = "exhaustive"; // one pow2 dimension: enumerate it
  Opts.MaxEvaluations = 16;
  driver::Orchestrator Orch(**Prog, **Baseline, Opts);
  auto R = Orch.runSearch();
  if (!R.ok()) {
    std::fprintf(stderr, "search failed: %s\n", R.message().c_str());
    return 1;
  }

  std::printf("space: %s", R->Space.describe().c_str());
  for (const auto &Rec : R->Search.History)
    if (Rec.Valid)
      std::printf("  skew=%-4lld -> %12.0f cycles\n",
                  (long long)std::get<int64_t>(Rec.P.Values.begin()->second),
                  Rec.Metric);
  std::printf("Locus best: %.0f cycles (speedup %.2fx over baseline)\n",
              R->BestCycles, R->Speedup);

  // Pluto-style fixed heuristic for comparison.
  eval::EvalOptions Check;
  Check.CountCost = false;
  eval::RunResult Base = eval::evaluateProgram(**Baseline, Check);
  baseline::PlutoOutcome Pluto = baseline::runPluto(
      **Baseline, "stencil", baseline::PlutoOptions{},
      [&](const cir::Program &Cand) {
        eval::RunResult V = eval::evaluateProgram(Cand, Check);
        return V.Ok && std::abs(V.Checksum - Base.Checksum) <
                           1e-6 * std::max(1.0, std::abs(Base.Checksum));
      });
  eval::RunResult PlutoRun = eval::evaluateProgram(*Pluto.Program);
  if (PlutoRun.Ok && R->BaselineCycles > 0)
    std::printf("Pluto (%s): %.0f cycles (speedup %.2fx)\n",
                Pluto.Summary.c_str(), PlutoRun.Cycles,
                R->BaselineCycles / PlutoRun.Cycles);

  if (!R->BaselineChosen)
    std::printf("\n=== Locus-generated code ===\n%s",
                cir::printProgram(*R->BestProgram).c_str());
  return 0;
}
