#define N 40

double A[N][N];
double x1[N];
double x2[N];
double y1[N];
double y2[N];

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
  t_end = rtclock();
  print_array();
  return 0;
}
