#define N 40

double A[N][N];
double u1[N];
double v1[N];
double u2[N];
double v2[N];
double w[N];
double x[N];
double y[N];
double z[N];
double alpha;
double beta;

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (i = 0; i < N; i++)
    x[i] = x[i] + z[i];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
  t_end = rtclock();
  print_array();
  return 0;
}
