#define N 40

double A[N][N];
double C[N][N];
double alpha;
double beta;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      C[i][j] = C[i][j] * beta;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
  t_end = rtclock();
  print_array();
  return 0;
}
