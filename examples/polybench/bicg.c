#define N 40

double A[N][N];
double s[N];
double q[N];
double p[N];
double r[N];

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    s[i] = 0.0;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
  t_end = rtclock();
  print_array();
  return 0;
}
