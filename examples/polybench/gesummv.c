#define N 40

double A[N][N];
double B[N][N];
double tmp[N];
double x[N];
double y[N];
double alpha;
double beta;

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
  t_end = rtclock();
  print_array();
  return 0;
}
