#define N 40

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];
double alpha;
double beta;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < N; k++)
        tmp[i][j] = tmp[i][j] + alpha * A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      D[i][j] = D[i][j] * beta;
      for (k = 0; k < N; k++)
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
    }
  t_end = rtclock();
  print_array();
  return 0;
}
