#define N 40

double A[N][N];
double B[N][N];
double alpha;

int main()
{
  int i, j, k;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 1; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < i; k++)
        B[i][j] = B[i][j] + alpha * A[i][k] * B[j][k];
  t_end = rtclock();
  print_array();
  return 0;
}
