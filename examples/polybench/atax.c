#define N 40

double A[N][N];
double x[N];
double y[N];
double tmp[N];

int main()
{
  int i, j;
  double t_start, t_end;
  init_array();
  t_start = rtclock();
  for (i = 0; i < N; i++)
    y[i] = 0.0;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < N; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (j = 0; j < N; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
  t_end = rtclock();
  print_array();
  return 0;
}
