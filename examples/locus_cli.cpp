//===- locus_cli.cpp - Command-line driver for the Locus system ---------------===//
//
// The tool a downstream user runs, wrapping the full pipeline:
//
//   locus_cli PROGRAM.locus SOURCE.c [options]
//
//   --direct              run the direct workflow (program has no search
//                         constructs, or every construct is pinned by --point)
//   --point FILE          pin the search constructs from a serialized point
//   --search NAME         search module: bandit (default), tpe, random,
//                         hillclimb, de, exhaustive
//   --budget N            variant assessments (default 100)
//   --seed N              search seed (default 42)
//   --jobs N              concurrent evaluation workers (default 1); results
//                         commit in proposal order, so the trajectory and
//                         best point match the serial run exactly
//   --no-eval-cache       disable the content-addressed evaluation cache
//                         (distinct points materializing to the same variant
//                         are then re-simulated each time)
//   --cache-dir DIR       persist the evaluation cache in DIR/evalcache.rlog
//                         (CRC-framed record log, safe to share between
//                         concurrent orchestrator processes); a later run
//                         with the same directory starts warm
//   --cache-readonly      consume a shared --cache-dir without appending to
//                         it (for farms where one writer owns the store)
//   --machine xeon|tiny   simulated machine (default xeon)
//   --cores N             override the core count
//   --emit-c FILE         write the best variant as compilable C
//   --export-direct FILE  write the pinned direct Locus program (Section II)
//   --export-point FILE   write the best point in serialized form
//   --native              additionally time the best variant with the system
//                         C compiler (the paper's buildcmd/runcmd path); the
//                         compile and run happen in the subprocess sandbox
//                         (argv exec, watchdog, rlimits, hermetic workdir)
//                         and the native checksum is validated against the
//                         simulator within --checksum-rtol
//   --native-metric       measure every searched variant natively instead of
//                         on the simulator (falls back to the simulator with
//                         a warning when no compiler is available)
//   --native-timeout SECS ceiling on each sandboxed native run (default 10);
//                         the per-variant deadline derived from the baseline
//                         native time never exceeds it
//   --keep-workdirs       keep each native evaluation's mkdtemp directory
//                         (sources, binary) instead of removing it
//   --checksum-rtol X     relative tolerance for checksum validation, both
//                         variant-vs-baseline and native-vs-simulator
//                         (default 1e-6)
//   --journal FILE        append every assessed variant to FILE (crash-safe
//                         CRC-framed record log, fsynced per record; a torn
//                         tail from a crash is recovered, other corruption
//                         is a located error)
//   --journal-sync MODE   durability per appended record: full (fsync, the
//                         default), flush (kernel only), none (buffered)
//   --resume              reload an existing --journal file and continue the
//                         interrupted search where it left off
//   --race-check          parallel-safety report: for every region loop,
//                         print the race verdict for parallelizing it, the
//                         private/firstprivate/shared/reduction variable
//                         classification, and a located witness for every
//                         proven race; advisory, always exits 0
//   --trust-parallel      attach `omp parallel for` even to provably-racy
//                         loops and model their speedup anyway (checksum
//                         validation still guards the results)
//   --lint                static diagnostics only: run the CIR verifier on
//                         the source and warn about regions where dependence
//                         analysis is unavailable but the optimization
//                         program wants dependence-based transformations,
//                         about provably-racy parallelizations, and about
//                         subscripts range analysis cannot prove in bounds;
//                         prints nothing and exits 0 when everything is clean
//   --lint-strict         like --lint, but exit 1 when any warning or error
//                         is reported (lint gates the build); also hardens
//                         --bounds-check the same way
//   --verify-each         run the CIR verifier after every applied
//                         transformation (variants failing verification are
//                         rejected as illegal)
//   --no-static-prune     disable the static legality oracle (every point
//                         reaches the evaluator)
//
// Source-only static bounds proofs (no Locus program needed):
//
//   locus_cli --bounds-check SOURCE.c [--lint-strict]
//
//   --bounds-check        run symbolic range analysis over every array
//                         subscript and print the bounds report: proven
//                         subscripts are counted, everything else gets a
//                         located witness naming the access, its interval,
//                         and the loop that drives it. Exit 0 unless
//                         --lint-strict is also given, in which case any
//                         violation or unproven subscript exits 1.
//
// Pragma-free sources run through region discovery instead:
//
//   locus_cli --discover SOURCE.c [options]
//
//   --discover            scan an unannotated source for candidate loop
//                         nests and print the ranked report: per-candidate
//                         verdict (selected / demoted / rejected), nest
//                         depth, trip-count product, footprint, hotness,
//                         and a located reason for every demotion and
//                         rejection
//   --discover-top N      with --tune, annotate and tune only the N
//                         hottest annotatable candidates (default: all)
//   --tune                end-to-end: inject `#pragma @Locus` regions for
//                         the discovered candidates and tune each under
//                         the generated Fig. 13 generic program; accepts
//                         all search options above (--search, --budget,
//                         --seed, --jobs, --journal, ...)
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Dependence.h"
#include "src/analysis/ParallelSafety.h"
#include "src/analysis/RangeAnalysis.h"
#include "src/analysis/RegionDiscovery.h"
#include "src/analysis/TransformPlan.h"
#include "src/analysis/Verifier.h"
#include "src/cir/AstUtils.h"
#include "src/cir/Parser.h"
#include "src/cir/Printer.h"
#include "src/driver/Orchestrator.h"
#include "src/eval/NativeEvaluator.h"
#include "src/locus/LocusParser.h"
#include "src/locus/LocusPrinter.h"
#include "src/support/RecordLog.h"
#include "src/support/Signals.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace locus;

namespace {

std::string readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  Ok = static_cast<bool>(In);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Text;
  return static_cast<bool>(Out);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s PROGRAM.locus SOURCE.c [--direct] [--point FILE]\n"
               "       [--search NAME] [--budget N] [--seed N] [--jobs N]\n"
               "       [--machine xeon|tiny] [--cores N]\n"
               "       [--emit-c FILE] [--export-direct FILE]\n"
               "       [--export-point FILE] [--native] [--native-metric]\n"
               "       [--native-timeout SECS] [--keep-workdirs]\n"
               "       [--checksum-rtol X]\n"
               "       [--journal FILE] [--journal-sync none|flush|full]\n"
               "       [--resume] [--no-eval-cache]\n"
               "       [--cache-dir DIR] [--cache-readonly]\n"
               "       [--lint] [--lint-strict] [--race-check]\n"
               "       [--trust-parallel]\n"
               "       [--verify-each] [--no-static-prune]\n"
               "       [--serve --queue-dir DIR [--workers N]\n"
               "        [--lease-timeout SECS]]\n"
               "       [--worker --queue-dir DIR [--worker-id ID]]\n"
               "   or: %s --bounds-check SOURCE.c [--lint-strict]\n"
               "   or: %s --discover SOURCE.c [--discover-top N] [--tune]\n"
               "       [search options]\n"
               "   or: %s --journal-dump FILE | --queue-dump DIR-or-FILE\n",
               Argv0, Argv0, Argv0, Argv0);
  return 2;
}

/// --journal-dump / --queue-dump: human-readable inspection of a CRC-framed
/// RecordLog file — header, per-record byte offset and payload summary, and
/// an explicit note when a torn tail was found. Queue dumps additionally
/// fold the records and print the resulting task state.
int dumpRecordLog(std::string Path, bool Queue) {
  struct stat St;
  if (Queue && ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
    Path = service::TaskQueue::queueFilePath(Path);
  auto Scan = support::RecordLog::scan(Path);
  if (!Scan.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Scan.message().c_str());
    return 1;
  }
  if (Scan->Header.empty() && Scan->Records.empty() && !Scan->TornTail) {
    std::printf("%s: empty or missing record log\n", Path.c_str());
    return 0;
  }
  std::printf("%s: record log, %zu record(s), %llu intact bytes\n",
              Path.c_str(), Scan->Records.size(),
              (unsigned long long)Scan->GoodBytes);

  // The header payload pins the file to a space + config; show both the
  // parsed fingerprints (when the format is recognized) and the raw text.
  if (Queue) {
    auto H = service::parseQueueHeader(Scan->Header);
    if (H.ok())
      std::printf("header: queue v1, space fingerprint %016llx, config "
                  "digest %016llx\n",
                  (unsigned long long)H->SpaceFingerprint,
                  (unsigned long long)H->ConfigDigest);
    else
      std::printf("header: unrecognized (%s)\n", H.message().c_str());
  } else {
    search::JournalHeader H;
    if (search::SearchJournal::parseHeader(Scan->Header, H))
      std::printf("header: journal, space fingerprint %016llx, config "
                  "digest %016llx\n",
                  (unsigned long long)H.SpaceFingerprint,
                  (unsigned long long)H.ConfigDigest);
    else
      std::printf("header: unrecognized journal header\n");
  }

  uint64_t Off = support::RecordLog::headerBlockSize(Scan->Header.size());
  service::QueueState State;
  for (size_t I = 0; I < Scan->Records.size(); ++I) {
    const std::string &Payload = Scan->Records[I];
    std::string Summary;
    if (Queue) {
      auto R = service::parseQueueRecord(Payload);
      if (R.ok()) {
        Summary = service::queueRecordKindName(R->K);
        if (R->K != service::QueueRecord::Kind::Shutdown)
          Summary += " id=" + std::to_string(R->Id);
        switch (R->K) {
        case service::QueueRecord::Kind::Lease:
        case service::QueueRecord::Kind::Heartbeat:
          Summary += " epoch=" + std::to_string(R->Epoch) + " worker=" +
                     R->Worker;
          break;
        case service::QueueRecord::Kind::Expire:
          Summary += " epoch=" + std::to_string(R->Epoch);
          break;
        case service::QueueRecord::Kind::Result:
          Summary += " epoch=" + std::to_string(R->Epoch) + " worker=" +
                     R->Worker + " " +
                     (R->Out.ok() ? "metric=" + std::to_string(R->Out.Metric)
                                  : std::string(search::failureKindName(
                                        R->Out.Failure)));
          break;
        default:
          break;
        }
        State.apply(*R);
      } else {
        Summary = "unparseable: " + R.message();
      }
    } else {
      // Journal records are single JSON lines; the first stretch is the
      // point itself, which is the useful part at a glance.
      Summary = Payload.substr(0, 96);
      if (Payload.size() > 96)
        Summary += "...";
      for (char &C : Summary)
        if (C == '\n')
          C = ' ';
    }
    std::printf("  @%-8llu %5zu bytes  %s\n", (unsigned long long)Off,
                Payload.size(), Summary.c_str());
    Off += 8 + Payload.size();
  }
  if (Scan->TornTail)
    std::printf("torn tail at offset %llu: %s (recovery truncates to %llu "
                "bytes)\n",
                (unsigned long long)Scan->TornOffset, Scan->Why.c_str(),
                (unsigned long long)Scan->GoodBytes);
  if (Queue) {
    uint64_t Done = 0, Open = 0, Claimed = 0, Quarantined = 0;
    for (const auto &[Id, T] : State.Tasks) {
      if (T.Done)
        ++Done;
      else if (!T.LeaseWorker.empty())
        ++Claimed;
      else
        ++Open;
      if (T.Quarantined)
        ++Quarantined;
    }
    std::printf("state: %zu task(s): %llu done (%llu quarantined), %llu "
                "claimed, %llu open; %llu stale result(s) discarded%s\n",
                State.Tasks.size(), (unsigned long long)Done,
                (unsigned long long)Quarantined, (unsigned long long)Claimed,
                (unsigned long long)Open,
                (unsigned long long)State.StaleResultsDiscarded,
                State.ShutdownSeen ? "; shutdown announced" : "");
  }
  return 0;
}

using cir::collectAllLoops;
using cir::collectOuterLoops;

/// Parallel-safety report (--race-check): for every outer loop of every
/// region — plus any nested loop already carrying an `omp parallel for`
/// pragma — print the verdict for parallelizing it, the data-sharing
/// classification of every referenced variable, and a located witness for
/// every proven race. Advisory: always exits 0.
int runRaceCheck(const cir::Program &Baseline) {
  for (const std::string &Name : Baseline.regionNames()) {
    for (const cir::Block *Region : Baseline.findRegions(Name)) {
      std::vector<const cir::ForStmt *> Outer, All;
      collectOuterLoops(*Region, Outer);
      collectAllLoops(*Region, All);
      std::vector<const cir::ForStmt *> Targets = Outer;
      for (const cir::ForStmt *For : All)
        if (analysis::hasOmpParallelFor(*For) &&
            std::find(Targets.begin(), Targets.end(), For) == Targets.end())
          Targets.push_back(For);

      for (const cir::ForStmt *For : Targets) {
        analysis::ParallelSafetyReport Rep =
            analysis::analyzeParallelLoop(*For);
        std::printf("region '%s': loop '%s' (%s)%s: %s\n", Name.c_str(),
                    For->Var.c_str(), For->Loc.str().c_str(),
                    analysis::hasOmpParallelFor(*For) ? " [omp parallel for]"
                                                      : "",
                    Rep.summary().c_str());
        for (const analysis::RaceWitness &W : Rep.Witnesses)
          std::printf("  witness: %s\n", W.render().c_str());
        if (Rep.Verdict == analysis::ParallelVerdict::Safe) {
          std::string Clauses = Rep.clauses();
          if (!Clauses.empty())
            std::printf("  clauses: %s\n", Clauses.c_str());
        }
        for (const analysis::VarInfo &V : Rep.Vars) {
          std::string Class = analysis::varClassName(V.Class);
          if (V.Class == analysis::VarClass::Reduction && V.Reduction)
            Class += std::string("(") + analysis::redOpName(*V.Reduction) + ")";
          std::printf("  %-16s %-17s %s\n",
                      (V.Name + (V.IsArray ? "[]" : "")).c_str(), Class.c_str(),
                      V.Why.c_str());
        }
      }
    }
  }
  return 0;
}

/// --bounds-check: source-only symbolic range analysis over every array
/// subscript. Prints the report (per-finding located witnesses, summary
/// line); exits 0 unless \p Strict, in which case any non-proven subscript
/// exits 1.
int runBoundsCheck(const cir::Program &Baseline, bool Strict) {
  analysis::BoundsReport Report = analysis::checkBounds(Baseline);
  std::printf("%s\n", Report.render().c_str());
  return Strict && !Report.clean() ? 1 : 0;
}

/// Static diagnostics: CIR verifier findings plus dependence-availability
/// warnings for regions the optimization program wants to transform with
/// dependence-based modules, race findings for loops that are (or that
/// the optimization program asks to be) parallelized, and bounds findings
/// for subscripts range analysis cannot prove in bounds. Exits 0 (lint
/// never gates a build) unless \p Strict, in which case any printed
/// finding exits 1.
int runLint(const lang::LocusProgram &Prog, const cir::Program &Baseline,
            bool Strict) {
  support::DiagEngine Diags;
  analysis::verifyProgram(Baseline, Diags);

  // Which regions have dependence information on their outer loop nests?
  std::map<std::string, bool> DepAvailable;
  for (const std::string &Name : Baseline.regionNames()) {
    bool Available = true;
    for (const cir::Block *Region : Baseline.findRegions(Name)) {
      std::vector<const cir::ForStmt *> Loops;
      collectOuterLoops(*Region, Loops);
      for (const cir::ForStmt *For : Loops) {
        support::Diag Why;
        if (!analysis::DependenceInfo::compute(*For, &Why)) {
          Available = false;
          if (!Why.Message.empty()) {
            Why.Region = Name;
            Diags.report(Why.Sev, Why.Loc, Why.Region, Why.Message);
          }
        }
      }
    }
    DepAvailable[Name] = Available;
  }

  // Race findings: any loop already carrying `omp parallel for` whose
  // parallel safety the analyzer refutes (or cannot establish) is worth a
  // warning — the search's applyOmpFor gate only sees loops the
  // optimization program parallelizes, not pragmas baked into the source.
  for (const std::string &Name : Baseline.regionNames()) {
    for (const cir::Block *Region : Baseline.findRegions(Name)) {
      std::vector<const cir::ForStmt *> Loops;
      collectAllLoops(*Region, Loops);
      for (const cir::ForStmt *For : Loops) {
        if (!analysis::hasOmpParallelFor(*For))
          continue;
        analysis::ParallelSafetyReport Rep =
            analysis::analyzeParallelLoop(*For);
        if (Rep.Verdict == analysis::ParallelVerdict::Racy) {
          std::string Msg = "loop '" + For->Var +
                            "' carries 'omp parallel for' but is racy";
          if (!Rep.Witnesses.empty())
            Msg += ": " + Rep.Witnesses.front().render();
          Diags.warning(For->Loc, Name, Msg);
        } else if (Rep.Verdict == analysis::ParallelVerdict::Unknown) {
          Diags.warning(For->Loc, Name,
                        "loop '" + For->Var +
                            "' carries 'omp parallel for' but its parallel "
                            "safety cannot be established: " +
                            Rep.WhyUnknown);
        }
      }
    }
  }

  // Extract the plan and flag dependence-based transformations aimed at
  // regions without dependence information: at run time those calls will be
  // rejected (RequireDeps) or applied blindly.
  static const std::set<std::string> NeedsDeps = {
      "Tiling", "GenericTiling", "Interchange",
      "UnrollAndJam", "Fusion", "Distribute"};
  std::unique_ptr<cir::Program> Clone = Baseline.clone();
  transform::TransformContext TCtx;
  TCtx.Prog = Clone.get();
  lang::ModuleRegistry Registry = lang::ModuleRegistry::standard();
  lang::LocusInterpreter Interp(Prog, Registry);
  search::Space Space;
  analysis::TransformPlan Plan;
  lang::ExecOutcome Exec = Interp.extractSpace(*Clone, Space, TCtx, &Plan);
  if (Exec.Ok) {
    std::set<std::string> Seen;
    for (const analysis::PlanEntry &E : Plan.Entries) {
      if (E.K != analysis::PlanEntry::Kind::ModuleCall ||
          !NeedsDeps.count(E.Member))
        continue;
      auto It = DepAvailable.find(E.Region);
      if (It == DepAvailable.end() || It->second)
        continue;
      std::string Key = E.Module + "." + E.Member + "@" + E.Region;
      if (!Seen.insert(Key).second)
        continue;
      Diags.warning({}, E.Region,
                    E.Module + "." + E.Member + " (optimization program line " +
                        std::to_string(E.Line) +
                        ") transforms a region without dependence "
                        "information; its legality cannot be checked");
    }
  }

  // Discovery findings: loop nests living outside every @Locus region.
  // Rejected candidates surface their located rejection reason; annotatable
  // ones get a coverage hint. Advisory like the rest of lint (exit 0).
  analysis::DiscoveryReport Disc = analysis::discoverRegions(Baseline);
  for (const analysis::NestCandidate &C : Disc.Candidates) {
    if (C.Verdict == analysis::CandidateVerdict::Rejected) {
      support::SrcLoc Loc = C.Why.Loc.valid() ? C.Why.Loc : C.Loc;
      Diags.warning(Loc, "",
                    "discovery: loop nest at " + C.Loc.str() +
                        " is not optimizable: " + C.Why.Message);
    } else {
      Diags.warning(C.Loc, "",
                    "loop nest `for (" + C.LoopVar +
                        ")` is not covered by any @Locus region; discovery "
                        "ranks it as " +
                        C.Name + " (" +
                        analysis::candidateVerdictName(C.Verdict) + ")");
    }
  }

  // Bounds findings: subscripts range analysis cannot prove in bounds.
  // Violations carry a concrete witness; unproven ones say what is missing.
  analysis::BoundsReport Bounds = analysis::checkBounds(Baseline);
  for (const analysis::SubscriptFinding &F : Bounds.Findings)
    Diags.warning(F.Loc, F.Region, F.witness());

  int Printed = 0;
  for (const support::Diag &D : Diags.all())
    if (D.Sev != support::DiagSeverity::Note) {
      std::printf("%s\n", D.render().c_str());
      ++Printed;
    }
  return Strict && Printed > 0 ? 1 : 0;
}

/// --discover [--tune]: scan an unannotated source, print the ranked
/// report, and optionally annotate the top candidates and tune each one
/// under the generated generic program. Report-only mode always exits 0;
/// tune mode exits 1 when any candidate's search fails.
int runDiscover(const cir::Program &Baseline, driver::OrchestratorOptions Opts,
                int TopN, bool Tune) {
  analysis::DiscoveryOptions DOpts;
  DOpts.Machine = Opts.Eval.Machine;
  analysis::DiscoveryReport Report = analysis::discoverRegions(Baseline, DOpts);
  std::printf("%s", Report.render().c_str());
  if (!Tune)
    return 0;

  std::unique_ptr<cir::Program> Annotated = Baseline.clone();
  Expected<int> Injected = analysis::annotateRegions(*Annotated, Report, TopN);
  if (!Injected.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n", Injected.message().c_str());
    return 1;
  }
  std::printf("annotated %d region(s)\n", *Injected);

  const std::string JournalBase = Opts.JournalPath;
  int Failures = 0;
  for (const analysis::NestCandidate *C : Report.annotatable(TopN)) {
    auto Prog = lang::parseLocusProgram(analysis::genericLocusProgram(*C));
    if (!Prog.ok()) {
      std::fprintf(stderr, "candidate %s: bad generic program: %s\n",
                   C->Name.c_str(), Prog.message().c_str());
      ++Failures;
      continue;
    }
    // One journal per candidate: each search has its own space fingerprint.
    if (!JournalBase.empty())
      Opts.JournalPath = JournalBase + "." + C->Name;
    driver::Orchestrator Orch(**Prog, *Annotated, Opts);
    auto R = Orch.runSearch();
    if (!R.ok()) {
      std::fprintf(stderr, "candidate %s: search failed: %s\n", C->Name.c_str(),
                   R.message().c_str());
      ++Failures;
      continue;
    }
    std::printf("candidate %s (%s, depth %d): %llu points, assessed %d, "
                "baseline %.0f -> best %.0f cycles, speedup %.2fx%s\n",
                C->Name.c_str(), C->Loc.str().c_str(), C->Depth,
                (unsigned long long)R->Space.fullSize(), R->Search.Evaluations,
                R->BaselineCycles, R->BestCycles, R->Speedup,
                R->BaselineChosen ? " (baseline kept)" : "");
  }
  return Failures ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--journal-dump") == 0 ||
                    std::strcmp(argv[1], "--queue-dump") == 0)) {
    if (argc != 3)
      return usage(argv[0]);
    return dumpRecordLog(argv[2], std::strcmp(argv[1], "--queue-dump") == 0);
  }
  if (argc < 3)
    return usage(argv[0]);
  bool Discover = std::strcmp(argv[1], "--discover") == 0;
  bool BoundsCheck = std::strcmp(argv[1], "--bounds-check") == 0;
  std::string ProgramPath = Discover || BoundsCheck ? "" : argv[1];
  std::string SourcePath = argv[2];

  bool Direct = false, Native = false, Lint = false, RaceCheck = false;
  bool LintStrict = false;
  bool Tune = false;
  bool Serve = false, Worker = false;
  int ServeWorkers = 1;
  std::string QueueDir, WorkerId;
  // Flags a spawned worker must replay to build the *identical* objective
  // (machine model, tolerances, cache config); collected during parsing.
  std::vector<std::string> ForwardArgs;
  int DiscoverTop = 0;
  std::string PointPath, EmitC, ExportDirect, ExportPoint;
  driver::OrchestratorOptions Opts;
  Opts.MaxEvaluations = 100;
  // The CLI is an interactive tool: snippet arguments may name files on
  // disk (the paper's scatter_DZG.txt workflow). Search-internal replay
  // still runs with the flag's effect confined to module invocations the
  // user asked for.
  Opts.AllowSnippetFiles = true;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    const int ArgFirst = I;
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--direct") {
      Direct = true;
    } else if (Arg == "--tune") {
      if (!Discover) {
        std::fprintf(stderr, "--tune is only valid with --discover\n");
        return usage(argv[0]);
      }
      Tune = true;
    } else if (Arg == "--discover-top") {
      if (!Discover) {
        std::fprintf(stderr, "--discover-top is only valid with --discover\n");
        return usage(argv[0]);
      }
      if (const char *V = Next()) {
        DiscoverTop = std::atoi(V);
        if (DiscoverTop < 1) {
          std::fprintf(stderr, "--discover-top wants a positive count\n");
          return usage(argv[0]);
        }
      }
    } else if (Arg == "--native") {
      Native = true;
    } else if (Arg == "--native-metric") {
      Opts.NativeMetric = true;
    } else if (Arg == "--native-timeout") {
      if (const char *V = Next()) {
        Opts.Native.RunTimeoutSeconds = std::atof(V);
        if (Opts.Native.RunTimeoutSeconds <= 0) {
          std::fprintf(stderr, "--native-timeout wants a positive number of "
                               "seconds\n");
          return usage(argv[0]);
        }
      }
    } else if (Arg == "--keep-workdirs") {
      Opts.Native.KeepWorkDir = true;
    } else if (Arg == "--checksum-rtol") {
      if (const char *V = Next()) {
        Opts.ChecksumRtol = std::atof(V);
        if (Opts.ChecksumRtol <= 0) {
          std::fprintf(stderr, "--checksum-rtol wants a positive tolerance\n");
          return usage(argv[0]);
        }
      }
    } else if (Arg == "--lint") {
      Lint = true;
    } else if (Arg == "--lint-strict") {
      LintStrict = true;
      Lint = true;
    } else if (Arg == "--race-check") {
      RaceCheck = true;
    } else if (Arg == "--trust-parallel") {
      Opts.TrustParallel = true;
    } else if (Arg == "--verify-each") {
      Opts.VerifyEach = true;
    } else if (Arg == "--no-static-prune") {
      Opts.StaticPrune = false;
    } else if (Arg == "--point") {
      if (const char *V = Next())
        PointPath = V;
    } else if (Arg == "--search") {
      if (const char *V = Next())
        Opts.SearcherName = V;
    } else if (Arg == "--budget") {
      if (const char *V = Next())
        Opts.MaxEvaluations = std::atoi(V);
    } else if (Arg == "--seed") {
      if (const char *V = Next())
        Opts.Seed = static_cast<uint64_t>(std::atoll(V));
    } else if (Arg == "--jobs") {
      if (const char *V = Next()) {
        Opts.Jobs = std::atoi(V);
        if (Opts.Jobs < 1) {
          std::fprintf(stderr, "--jobs wants a positive worker count\n");
          return usage(argv[0]);
        }
      }
    } else if (Arg == "--no-eval-cache") {
      Opts.UseEvalCache = false;
    } else if (Arg == "--eval-cache") {
      Opts.UseEvalCache = true;
    } else if (Arg == "--cache-dir") {
      if (const char *V = Next())
        Opts.CacheDir = V;
    } else if (Arg == "--cache-readonly") {
      Opts.CacheReadOnly = true;
    } else if (Arg == "--machine") {
      const char *V = Next();
      if (V && std::strcmp(V, "tiny") == 0)
        Opts.Eval.Machine = machine::MachineConfig::tiny();
      else
        Opts.Eval.Machine = machine::MachineConfig::xeonE5v3();
    } else if (Arg == "--cores") {
      if (const char *V = Next())
        Opts.Eval.Machine.Cores = std::atoi(V);
    } else if (Arg == "--journal") {
      if (const char *V = Next())
        Opts.JournalPath = V;
    } else if (Arg == "--journal-sync") {
      if (const char *V = Next()) {
        bool SyncOk = false;
        Opts.JournalSyncMode = search::parseJournalSync(V, SyncOk);
        if (!SyncOk) {
          std::fprintf(stderr, "unknown --journal-sync mode: %s\n", V);
          return usage(argv[0]);
        }
      }
    } else if (Arg == "--resume") {
      Opts.ResumeFromJournal = true;
    } else if (Arg == "--emit-c") {
      if (const char *V = Next())
        EmitC = V;
    } else if (Arg == "--export-direct") {
      if (const char *V = Next())
        ExportDirect = V;
    } else if (Arg == "--export-point") {
      if (const char *V = Next())
        ExportPoint = V;
    } else if (Arg == "--serve") {
      Serve = true;
    } else if (Arg == "--worker") {
      Worker = true;
    } else if (Arg == "--workers") {
      if (const char *V = Next()) {
        ServeWorkers = std::atoi(V);
        if (ServeWorkers < 0) {
          std::fprintf(stderr, "--workers wants a non-negative count\n");
          return usage(argv[0]);
        }
      }
    } else if (Arg == "--queue-dir") {
      if (const char *V = Next())
        QueueDir = V;
    } else if (Arg == "--worker-id") {
      if (const char *V = Next())
        WorkerId = V;
    } else if (Arg == "--lease-timeout") {
      if (const char *V = Next()) {
        Opts.Serve.LeaseTimeoutSeconds = std::atof(V);
        if (Opts.Serve.LeaseTimeoutSeconds <= 0) {
          std::fprintf(stderr,
                       "--lease-timeout wants a positive number of seconds\n");
          return usage(argv[0]);
        }
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return usage(argv[0]);
    }
    static const std::set<std::string> ForwardFlags = {
        "--native-metric", "--native-timeout", "--keep-workdirs",
        "--checksum-rtol", "--trust-parallel", "--verify-each",
        "--no-eval-cache", "--eval-cache",     "--cache-dir",
        "--cache-readonly", "--machine",       "--cores"};
    if (ForwardFlags.count(Arg))
      for (int J = ArgFirst; J <= I; ++J)
        ForwardArgs.push_back(argv[J]);
  }
  if ((Serve || Worker) && QueueDir.empty()) {
    std::fprintf(stderr, "%s requires --queue-dir\n",
                 Serve ? "--serve" : "--worker");
    return usage(argv[0]);
  }
  if (Serve && Worker) {
    std::fprintf(stderr, "--serve and --worker are mutually exclusive\n");
    return usage(argv[0]);
  }

  bool Ok = false;
  std::string CText = readFile(SourcePath, Ok);
  if (!Ok) {
    std::fprintf(stderr, "cannot read %s\n", SourcePath.c_str());
    return 1;
  }
  auto Baseline = cir::parseProgram(CText);
  if (!Baseline.ok()) {
    std::fprintf(stderr, "%s: %s\n", SourcePath.c_str(),
                 Baseline.message().c_str());
    return 1;
  }

  if (BoundsCheck)
    return runBoundsCheck(**Baseline, LintStrict);
  if (Discover)
    return runDiscover(**Baseline, Opts, DiscoverTop, Tune);

  std::string LocusText = readFile(ProgramPath, Ok);
  if (!Ok) {
    std::fprintf(stderr, "cannot read %s\n", ProgramPath.c_str());
    return 1;
  }
  auto Prog = lang::parseLocusProgram(LocusText);
  if (!Prog.ok()) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath.c_str(),
                 Prog.message().c_str());
    return 1;
  }

  if (RaceCheck)
    return runRaceCheck(**Baseline);
  if (Lint)
    return runLint(**Prog, **Baseline, LintStrict);

  // Degrade gracefully on compiler-less hosts: native measurement is an
  // upgrade, not a requirement, so fall back to the simulator with a clear
  // diagnostic instead of failing the whole run.
  if (Opts.NativeMetric &&
      !eval::nativeCompilerAvailable(Opts.Native.Compiler)) {
    std::fprintf(stderr,
                 "warning: --native-metric: compiler '%s' is not available; "
                 "falling back to the simulator metric\n",
                 Opts.Native.Compiler.c_str());
    Opts.NativeMetric = false;
  }

  // Graceful SIGTERM/SIGINT: the flag is checked between evaluations, the
  // journal's last record is already synced, and partial results are
  // reported with a clean exit code.
  support::installShutdownFlag();
  Opts.StopFlag = support::shutdownFlag();

  if (Serve) {
    Opts.Serve.QueueDir = QueueDir;
    Opts.Serve.Workers = ServeWorkers;
    // Workers re-exec this binary with the same program/source and the
    // eval-relevant flags, in worker mode against the same queue dir.
    char ExeBuf[4096];
    ssize_t N = ::readlink("/proc/self/exe", ExeBuf, sizeof(ExeBuf) - 1);
    std::string Exe = N > 0 ? std::string(ExeBuf, static_cast<size_t>(N))
                            : std::string(argv[0]);
    std::vector<std::string> BaseArgv = {Exe, ProgramPath, SourcePath,
                                         "--worker", "--queue-dir", QueueDir};
    BaseArgv.insert(BaseArgv.end(), ForwardArgs.begin(), ForwardArgs.end());
    Opts.Serve.WorkerArgv = [BaseArgv](int, int) { return BaseArgv; };
  }

  driver::Orchestrator Orch(**Prog, **Baseline, Opts);

  if (Worker) {
    service::WorkerOptions WOpts;
    WOpts.QueueDir = QueueDir;
    WOpts.WorkerId =
        WorkerId.empty() ? "pid" + std::to_string(::getpid()) : WorkerId;
    WOpts.StopFlag = Opts.StopFlag;
    auto WR = Orch.runWorker(WOpts);
    if (!WR.ok()) {
      std::fprintf(stderr, "worker failed: %s\n", WR.message().c_str());
      return 1;
    }
    std::printf("worker %s: %llu task(s) evaluated, %llu claim(s) lost, "
                "%llu heartbeat(s)\n",
                WOpts.WorkerId.c_str(),
                (unsigned long long)WR->TasksEvaluated,
                (unsigned long long)WR->ClaimsLost,
                (unsigned long long)WR->Heartbeats);
    return 0;
  }

  std::unique_ptr<cir::Program> Best;
  search::Point BestPoint;
  double BestCycles = 0;
  double BestChecksum = std::numeric_limits<double>::quiet_NaN();

  if (Direct || !PointPath.empty()) {
    Expected<driver::DirectResult> R = [&] {
      if (PointPath.empty())
        return Orch.runDirect();
      std::string PointText = readFile(PointPath, Ok);
      if (!Ok)
        return Expected<driver::DirectResult>::error("cannot read " +
                                                     PointPath);
      // A point file needs the space to validate against.
      auto Search = Orch.runSearch(); // extraction only matters; budget spent
      (void)Search;
      search::Space Dummy;
      auto P = driver::deserializePoint(PointText, Dummy);
      if (!P.ok())
        return Expected<driver::DirectResult>::error(P.message());
      BestPoint = *P;
      return Orch.runPoint(*P);
    }();
    if (!R.ok()) {
      std::fprintf(stderr, "direct run failed: %s\n", R.message().c_str());
      return 1;
    }
    std::printf("direct variant: %.0f simulated cycles, %d transformations "
                "applied\n",
                R->Run.Cycles, R->Exec.TransformsApplied);
    for (const std::string &Line : R->Exec.Log)
      std::printf("  %s\n", Line.c_str());
    Best = std::move(R->Variant);
    BestCycles = R->Run.Cycles;
    BestChecksum = R->Run.Checksum;
  } else {
    auto R = Orch.runSearch();
    if (!R.ok()) {
      std::fprintf(stderr, "search failed: %s\n", R.message().c_str());
      return 1;
    }
    std::printf("space: %llu points (%zu parameters)\n",
                (unsigned long long)R->Space.fullSize(),
                R->Space.Params.size());
    std::printf("%s", R->Space.describe().c_str());
    std::printf("assessed %d variants (%d invalid, %d duplicates",
                R->Search.Evaluations, R->Search.InvalidPoints,
                R->Search.DuplicatesSkipped);
    if (R->Search.ReplayedEvaluations > 0)
      std::printf(", %d replayed from journal", R->Search.ReplayedEvaluations);
    if (R->Search.PrunedStatic > 0) {
      std::printf(", %d pruned statically", R->Search.PrunedStatic);
      if (R->Search.PrunedStaticByRange > 0)
        std::printf(" (%d by range)", R->Search.PrunedStaticByRange);
    }
    std::printf(")\n");
    for (int K = 1; K < search::NumFailureKinds; ++K)
      if (int N = R->Search.FailureCounts[static_cast<size_t>(K)])
        std::printf("  %-17s %d\n",
                    search::failureKindName(static_cast<search::FailureKind>(K)),
                    N);
    if (R->Search.PoolJobs > 1)
      std::printf("pool: %d workers, %d batches (widest %d), %d of %d "
                  "assessments dispatched in parallel\n",
                  R->Search.PoolJobs, R->Search.Batches, R->Search.MaxBatch,
                  R->Search.PooledEvaluations, R->Search.Evaluations);
    if (R->Search.CacheHits || R->Search.CacheMisses)
      std::printf("eval cache: %llu hits / %llu misses, %llu cross-point "
                  "dedup saves\n",
                  (unsigned long long)R->Search.CacheHits,
                  (unsigned long long)R->Search.CacheMisses,
                  (unsigned long long)R->Search.CacheDedupSaves);
    if (!Opts.CacheDir.empty()) {
      std::printf("persistent cache: %llu loaded, %llu appended",
                  (unsigned long long)R->Search.CacheLoadedPersistent,
                  (unsigned long long)R->Search.CachePersistedAppends);
      if (R->Search.CacheWarnings)
        std::printf(", %llu warnings",
                    (unsigned long long)R->Search.CacheWarnings);
      if (R->Search.CacheDegraded)
        std::printf(" (degraded to in-memory)");
      std::printf("\n");
    }
    if (R->Guard.UnstableRetries || R->Guard.QuarantinedPoints)
      std::printf("guards: %d unstable retries (%d recovered), %d points "
                  "quarantined (%d rejects)\n",
                  R->Guard.UnstableRetries, R->Guard.UnstableRecovered,
                  R->Guard.QuarantinedPoints, R->Guard.QuarantineRejects);
    if (R->Served) {
      const service::ServiceStats &S = R->Service;
      std::printf("service: %llu task(s) (%llu from workers, %llu recovered, "
                  "%llu local), %d worker(s) spawned (%llu death(s), %llu "
                  "respawn(s)), %llu lease expiries, %llu stale result(s) "
                  "discarded, %llu quarantined%s\n",
                  (unsigned long long)S.TasksSubmitted,
                  (unsigned long long)S.WorkerResults,
                  (unsigned long long)S.RecoveredResults,
                  (unsigned long long)S.LocalFallbackEvals, S.WorkersSpawned,
                  (unsigned long long)S.WorkerDeaths,
                  (unsigned long long)S.WorkerRespawns,
                  (unsigned long long)S.LeaseExpiries,
                  (unsigned long long)S.StaleResultsDiscarded,
                  (unsigned long long)S.QuarantinedTasks,
                  S.Degraded ? " (degraded to in-process)" : "");
    }
    if (R->Search.Stopped)
      std::printf("interrupted: partial results after %d evaluation(s)\n",
                  R->Search.Evaluations);
    if (Opts.NativeMetric)
      std::printf("baseline %.6f s -> best %.6f s, speedup %.2fx%s\n",
                  R->BaselineCycles, R->BestCycles, R->Speedup,
                  R->BaselineChosen ? " (baseline kept)" : "");
    else
      std::printf("baseline %.0f cycles -> best %.0f cycles, speedup %.2fx%s\n",
                  R->BaselineCycles, R->BestCycles, R->Speedup,
                  R->BaselineChosen ? " (baseline kept)" : "");
    Best = std::move(R->BestProgram);
    BestPoint = R->Search.Best;
    BestCycles = R->BestCycles;
    if (R->BestRun.Ok)
      BestChecksum = R->BestRun.Checksum;

    if (!ExportPoint.empty() && !R->BaselineChosen)
      if (!writeFile(ExportPoint, driver::serializePoint(BestPoint)))
        std::fprintf(stderr, "cannot write %s\n", ExportPoint.c_str());
    if (!ExportDirect.empty() && !R->BaselineChosen) {
      auto DirectProg = lang::exportDirectProgram(**Prog, BestPoint);
      if (DirectProg.ok()) {
        if (!writeFile(ExportDirect, lang::printLocusProgram(**DirectProg)))
          std::fprintf(stderr, "cannot write %s\n", ExportDirect.c_str());
        else
          std::printf("direct program written to %s\n", ExportDirect.c_str());
      } else {
        std::fprintf(stderr, "direct export failed: %s\n",
                     DirectProg.message().c_str());
      }
    }
  }

  (void)BestCycles;
  if (!EmitC.empty() && Best) {
    if (!writeFile(EmitC, eval::emitNativeC(*Best)))
      std::fprintf(stderr, "cannot write %s\n", EmitC.c_str());
    else
      std::printf("C source written to %s\n", EmitC.c_str());
  }
  if (Native && Best) {
    eval::NativeResult NR = eval::evaluateNative(*Best, Opts.Native);
    if (NR.Ok) {
      std::printf("native run: %.6f s (checksum %.6f)\n", NR.Seconds,
                  NR.Checksum);
      // Native-vs-simulator validation: the emitted harness initializes
      // arrays exactly like the simulator, so the checksums must agree
      // within --checksum-rtol; a mismatch means the unparsed variant does
      // not compute what the simulated one did.
      if (!std::isnan(BestChecksum)) {
        double Tol = Opts.ChecksumRtol * std::max(1.0, std::abs(BestChecksum));
        if (std::abs(NR.Checksum - BestChecksum) > Tol) {
          std::fprintf(stderr,
                       "native checksum %.9f disagrees with the simulator's "
                       "%.9f (rtol %g)\n",
                       NR.Checksum, BestChecksum, Opts.ChecksumRtol);
          return 1;
        }
        std::printf("native checksum matches the simulator (rtol %g)\n",
                    Opts.ChecksumRtol);
      }
    } else {
      std::fprintf(stderr, "native run failed (%s): %s\n",
                   search::failureKindName(NR.Failure), NR.Error.c_str());
    }
    if (!NR.WorkDir.empty())
      std::printf("native workdir kept: %s\n", NR.WorkDir.c_str());
  }
  return 0;
}
