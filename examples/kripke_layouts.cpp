//===- kripke_layouts.cpp - Kripke data-layout selection ----------------------===//
//
// Section V-C: a single skeleton per Kripke kernel plus six address-snippet
// files replaces the six hand-optimized source versions. The Fig. 11 Locus
// program picks a layout (the only search variable), splices the matching
// address computation with BuiltIn.Altdesc, interchanges the nest into the
// layout's order, applies LICM + scalar replacement, and parallelizes.
//
// This example runs the Scattering kernel under all six layouts and compares
// each Locus-generated variant against the corresponding hand-optimized
// source version.
//
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/cir/Printer.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace locus;

int main() {
  workloads::KripkeConfig C;
  const std::string Kernel = "Scattering";

  std::string Skeleton = workloads::kripkeKernelSource(C, Kernel);
  std::string LocusText = workloads::kripkeLocusFig11(Kernel);
  std::printf("=== Locus program (Fig. 11) ===\n%s\n", LocusText.c_str());

  auto Baseline = cir::parseProgram(Skeleton);
  auto Prog = lang::parseLocusProgram(LocusText);
  if (!Baseline.ok() || !Prog.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  driver::OrchestratorOptions Opts;
  Opts.Snippets = workloads::kripkeSnippets(C, Kernel);
  Opts.InitHook = [&](eval::ProgramEvaluator &E) {
    workloads::initKripkeArrays(E, C);
  };
  Opts.SearcherName = "exhaustive";
  Opts.MaxEvaluations = 6;
  driver::Orchestrator Orch(**Prog, **Baseline, Opts);

  auto R = Orch.runSearch();
  if (!R.ok()) {
    std::fprintf(stderr, "search failed: %s\n", R.message().c_str());
    return 1;
  }

  std::printf("%-8s %16s %16s\n", "layout", "locus (cycles)", "hand (cycles)");
  const auto &Layouts = workloads::kripkeLayouts();
  double BestCycles = 0, WorstCycles = 0;
  for (size_t I = 0; I < Layouts.size(); ++I) {
    search::Point P;
    P.Values[R->Space.Params[0].Id] = static_cast<int64_t>(I);
    auto Variant = Orch.runPoint(P);
    if (!Variant.ok()) {
      std::printf("%-8s failed: %s\n", Layouts[I].c_str(),
                  Variant.message().c_str());
      continue;
    }
    // The hand-optimized source version for the same layout.
    auto Hand = cir::parseProgram(
        workloads::kripkeHandOptimizedSource(C, Kernel, Layouts[I]));
    double HandCycles = 0;
    if (Hand.ok()) {
      eval::ProgramEvaluator HandEval(**Hand, eval::EvalOptions());
      if (HandEval.prepare().ok()) {
        workloads::initKripkeArrays(HandEval, C);
        eval::RunResult HandRun = HandEval.run();
        if (HandRun.Ok)
          HandCycles = HandRun.Cycles;
      }
    }
    std::printf("%-8s %16.0f %16.0f\n", Layouts[I].c_str(),
                Variant->Run.Cycles, HandCycles);
    if (BestCycles == 0 || Variant->Run.Cycles < BestCycles)
      BestCycles = Variant->Run.Cycles;
    WorstCycles = std::max(WorstCycles, Variant->Run.Cycles);
  }

  if (BestCycles > 0)
    std::printf("\nbest layout is %.2fx faster than the worst; the search "
                "assessed %d variants to find it\n",
                WorstCycles / BestCycles, R->Search.Evaluations);
  return 0;
}
