//===- quickstart.cpp - Minimal end-to-end Locus walkthrough -----------------===//
//
// The complete pipeline on the paper's running example (Fig. 3 + Fig. 5):
//  1. parse the annotated baseline DGEMM,
//  2. parse a Locus optimization program with OR alternatives and pow2 tile
//     search variables,
//  3. extract the optimization space,
//  4. let a search module find the best variant on the simulated machine,
//  5. print the winning transformed code and the pinned point (the reusable
//     "direct program" recipe).
//
//===----------------------------------------------------------------------===//

#include "src/cir/Parser.h"
#include "src/cir/Printer.h"
#include "src/driver/Orchestrator.h"
#include "src/locus/LocusParser.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace locus;

int main() {
  // 1. The baseline version (Fig. 3), annotated with "#pragma @Locus".
  std::string CSource = workloads::dgemmSource(64, 64, 64);
  auto Baseline = cir::parseProgram(CSource);
  if (!Baseline.ok()) {
    std::fprintf(stderr, "baseline parse error: %s\n",
                 Baseline.message().c_str());
    return 1;
  }

  // 2. The optimization program (Fig. 5).
  std::string LocusSource = workloads::dgemmLocusFig5();
  std::printf("=== Locus optimization program ===\n%s\n", LocusSource.c_str());
  auto Prog = lang::parseLocusProgram(LocusSource);
  if (!Prog.ok()) {
    std::fprintf(stderr, "locus parse error: %s\n", Prog.message().c_str());
    return 1;
  }

  // 3-4. Search workflow on the simulated 10-core Xeon.
  driver::OrchestratorOptions Opts;
  Opts.SearcherName = "bandit"; // the OpenTuner-style ensemble
  Opts.MaxEvaluations = 40;
  driver::Orchestrator Orch(**Prog, **Baseline, Opts);
  auto Result = Orch.runSearch();
  if (!Result.ok()) {
    std::fprintf(stderr, "search failed: %s\n", Result.message().c_str());
    return 1;
  }

  std::printf("=== Optimization space ===\n%s",
              Result->Space.describe().c_str());
  std::printf("full size: %llu points, value size: %llu\n\n",
              (unsigned long long)Result->Space.fullSize(),
              (unsigned long long)Result->Space.valueSize());

  std::printf("assessed %d variants (%d invalid, %d duplicates skipped)\n",
              Result->Search.Evaluations, Result->Search.InvalidPoints,
              Result->Search.DuplicatesSkipped);
  std::printf("baseline: %.0f cycles, best variant: %.0f cycles "
              "-> speedup %.2fx%s\n\n",
              Result->BaselineCycles, Result->BestCycles, Result->Speedup,
              Result->BaselineChosen ? " (baseline kept: non-prescriptive)"
                                     : "");

  // 5. The winning variant and its pinned recipe.
  if (!Result->BaselineChosen) {
    std::printf("=== Best variant ===\n%s\n",
                cir::printProgram(*Result->BestProgram).c_str());
    std::printf("=== Pinned point (ship with the baseline) ===\n%s\n",
                driver::serializePoint(Result->Search.Best).c_str());
  }
  return 0;
}
